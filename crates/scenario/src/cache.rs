//! Content-addressed run store.
//!
//! A [`RunCache`] memoizes run results keyed by
//! [`Scenario::content_hash`]: an in-memory map always, plus an optional
//! on-disk layer (one file per scenario, named by the 16-hex-digit
//! hash). Because the key is derived from the *canonical serialized
//! scenario* — never from addresses or process state — a cache written
//! by one process is valid in any other, and a hit must be bit-identical
//! to a fresh run by the workspace's determinism contract (results are a
//! pure function of the scenario).
//!
//! The cache is value-generic. Disk persistence needs a codec — a pair
//! of plain functions so the value type's crate (not this one) owns its
//! serialization. A codec may decline to encode a particular value
//! (e.g. runs carrying bulky telemetry) by returning `None`; such values
//! stay memory-only.
//!
//! # Crash safety (`rcoal-cache-entry/v1`)
//!
//! On disk each value is wrapped in a checksummed envelope: a header
//! line naming the schema, the scenario hash, the payload length, and an
//! FNV-1a 64 checksum of the payload, followed by the payload itself.
//! Entries are written to a unique temp file, fsync'd, renamed into
//! place, and the directory fsync'd — so a crash at any point leaves
//! either the old state or the complete new entry, never a torn one
//! visible under the final name. Every read re-verifies the envelope;
//! anything torn, bit-rotted, or undecodable is **quarantined** — moved
//! aside to a `.corrupt` sidecar (preserved as evidence, never retried)
//! — and the lookup reports a miss so the runner simply re-simulates.
//! Write failures are counted in [`CacheStats::write_failures`] and
//! surfaced as telemetry warnings, never silently swallowed: a lost
//! write only costs a future re-run, but an *uncounted* lost write hides
//! a failing disk.
//!
//! [`RunCache::verify`] and [`RunCache::repair`] audit the whole
//! directory offline (repair additionally performs the quarantine), and
//! a [`ChaosPlan`] can be attached to inject seeded write-path faults
//! for the chaos test-suite.

use crate::chaos::ChaosPlan;
use crate::scenario::{fnv1a_64, Scenario, ScenarioError};
use rcoal_telemetry::{Event, EventRing, MetricsRegistry, Severity};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// Schema identifier of the on-disk entry envelope.
pub const ENTRY_SCHEMA: &str = "rcoal-cache-entry/v1";

/// Serializes a cached value to its on-disk JSON form; `None` keeps the
/// value memory-only.
pub type EncodeFn<V> = fn(&V) -> Option<String>;

/// Parses a value back from its on-disk form.
pub type DecodeFn<V> = fn(&str) -> Result<V, ScenarioError>;

/// Cache traffic counters (monotonic since construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from memory or disk.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// The subset of `hits` served by reading a disk file.
    pub disk_hits: u64,
    /// Values written to disk.
    pub disk_stores: u64,
    /// Disk writes that failed (write, fsync, or rename error — or an
    /// injected chaos fault). The value still lands in memory.
    pub write_failures: u64,
    /// On-disk entries found torn/corrupt/undecodable and moved to a
    /// `.corrupt` sidecar.
    pub quarantined: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`; `0` when there was no traffic.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Result of a [`RunCache::verify`] or [`RunCache::repair`] pass over
/// the cache directory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreAudit {
    /// Entry files examined (`*.json`).
    pub entries: u64,
    /// Entries whose envelope verified clean.
    pub ok: u64,
    /// Entries that failed verification (torn, checksum mismatch, wrong
    /// hash, or missing/unknown envelope).
    pub corrupt: u64,
    /// Corrupt entries moved to `.corrupt` sidecars (repair only;
    /// always `0` for verify).
    pub repaired: u64,
    /// Paths of the corrupt entries, as found (before any rename).
    pub corrupt_paths: Vec<PathBuf>,
}

impl StoreAudit {
    /// Whether every examined entry verified clean.
    pub fn is_clean(&self) -> bool {
        self.corrupt == 0
    }
}

/// In-memory + optional on-disk memo keyed by scenario content hash.
///
/// All methods take `&self`; the cache is safe to share across the
/// worker threads of a sweep.
pub struct RunCache<V> {
    mem: Mutex<HashMap<u64, V>>,
    dir: Option<PathBuf>,
    encode: EncodeFn<V>,
    decode: Option<DecodeFn<V>>,
    chaos: ChaosPlan,
    metrics: Option<MetricsRegistry>,
    events: Mutex<EventRing>,
    hits: AtomicU64,
    misses: AtomicU64,
    disk_hits: AtomicU64,
    disk_stores: AtomicU64,
    write_failures: AtomicU64,
    quarantined: AtomicU64,
    write_ops: AtomicU64,
}

impl<V> std::fmt::Debug for RunCache<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunCache")
            .field("len", &self.len())
            .field("dir", &self.dir)
            .field("stats", &self.stats())
            .finish()
    }
}

impl<V: Clone> Default for RunCache<V> {
    fn default() -> Self {
        Self::in_memory()
    }
}

impl<V: Clone> RunCache<V> {
    /// A memory-only cache.
    pub fn in_memory() -> Self {
        RunCache {
            mem: Mutex::new(HashMap::new()),
            dir: None,
            encode: |_| None,
            decode: None,
            chaos: ChaosPlan::inert(),
            metrics: None,
            events: Mutex::new(EventRing::with_capacity(64).with_min_severity(Severity::Warn)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            disk_stores: AtomicU64::new(0),
            write_failures: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            write_ops: AtomicU64::new(0),
        }
    }

    /// A cache backed by directory `dir` (created if absent): values a
    /// codec encodes persist as enveloped `<hash>.json` files and are
    /// readable by later processes.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] if the directory cannot be created.
    pub fn with_disk(
        dir: impl Into<PathBuf>,
        encode: EncodeFn<V>,
        decode: DecodeFn<V>,
    ) -> Result<Self, ScenarioError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| {
            ScenarioError::new(format!("cannot create cache dir {}: {e}", dir.display()))
        })?;
        let mut cache = Self::in_memory();
        cache.dir = Some(dir);
        cache.encode = encode;
        cache.decode = Some(decode);
        Ok(cache)
    }

    /// Attaches a chaos plan; its write-path faults (io failure,
    /// corruption, torn writes) fire on this cache's disk writes.
    #[must_use]
    pub fn with_chaos(mut self, plan: ChaosPlan) -> Self {
        self.chaos = plan;
        self
    }

    /// In-place form of [`RunCache::with_chaos`], for caches owned by a
    /// larger builder.
    pub fn set_chaos(&mut self, plan: ChaosPlan) {
        self.chaos = plan;
    }

    /// Mirrors failure counters (`cache.write_failures`,
    /// `cache.quarantined`) into `registry`.
    #[must_use]
    pub fn with_metrics(mut self, registry: MetricsRegistry) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// In-place form of [`RunCache::with_metrics`].
    pub fn set_metrics(&mut self, registry: MetricsRegistry) {
        self.metrics = Some(registry);
    }

    /// Looks `scenario` up, consulting memory first, then disk. A disk
    /// hit is promoted into memory. Counted in [`RunCache::stats`].
    pub fn get(&self, scenario: &Scenario) -> Option<V> {
        let key = scenario.content_hash();
        if let Some(v) = self.lock().get(&key).cloned() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(v);
        }
        if let Some(v) = self.read_disk(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
            return Some(v);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Whether `scenario` is cached (memory or disk), without touching
    /// the traffic counters.
    pub fn contains(&self, scenario: &Scenario) -> bool {
        let key = scenario.content_hash();
        if self.lock().contains_key(&key) {
            return true;
        }
        self.dir
            .as_ref()
            .is_some_and(|dir| dir.join(file_name(key)).exists())
    }

    /// Stores `value` under `scenario`'s hash: into memory always, and
    /// to disk when a directory is attached and the codec encodes it.
    ///
    /// Disk failures never lose the in-memory value and never panic —
    /// they increment [`CacheStats::write_failures`] and emit a `Warn`
    /// telemetry event, because a cache that silently drops writes turns
    /// a failing disk into mystery cache misses.
    pub fn insert(&self, scenario: &Scenario, value: V) {
        let key = scenario.content_hash();
        if let Some(dir) = &self.dir {
            if let Some(payload) = (self.encode)(&value) {
                match self.write_entry(dir, key, &payload) {
                    Ok(()) => {
                        self.disk_stores.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) => self.note_write_failure(key, &e),
                }
            }
        }
        self.lock().insert(key, value);
    }

    /// Writes one enveloped entry with write-then-rename + fsync,
    /// applying any armed chaos faults for this write op.
    fn write_entry(&self, dir: &Path, key: u64, payload: &str) -> Result<(), ScenarioError> {
        use std::io::Write;

        let op = self.write_ops.fetch_add(1, Ordering::Relaxed);
        if self.chaos.io_fails_on(op) {
            return Err(ScenarioError::new("injected io failure"));
        }
        let mut bytes = encode_entry(key, payload).into_bytes();
        if self.chaos.corrupts_on(op) {
            // Flip a payload byte *after* checksumming, simulating bit
            // rot the envelope must catch on read.
            let last = bytes.len() - 1;
            bytes[last] ^= 0x01;
        }
        if self.chaos.tears_on(op) {
            // Simulate a torn write reaching the final name (a crashed
            // writer on a filesystem without rename atomicity): half an
            // envelope under the real file name.
            bytes.truncate(bytes.len() / 2);
        }
        let path = dir.join(file_name(key));
        // Unique temp name: concurrent writers of the same hash (or a
        // leftover from a crashed process) can never collide.
        let tmp = dir.join(format!("{key:016x}.{}.{op}.tmp", std::process::id()));
        let io = |e: std::io::Error| ScenarioError::new(format!("{}: {e}", path.display()));
        let mut file = std::fs::File::create(&tmp).map_err(io)?;
        let written = file
            .write_all(&bytes)
            .and_then(|()| file.sync_all())
            .map_err(io);
        drop(file);
        if let Err(e) = written {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        std::fs::rename(&tmp, &path).map_err(io)?;
        // Persist the rename itself; best-effort (not all platforms
        // support directory fsync).
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }

    fn read_disk(&self, key: u64) -> Option<V> {
        let dir = self.dir.as_ref()?;
        let decode = self.decode?;
        let path = dir.join(file_name(key));
        let text = std::fs::read_to_string(&path).ok()?;
        let value = decode_entry(key, &text)
            .and_then(decode)
            .map_err(|e| self.quarantine(&path, key, &e))
            .ok()?;
        self.lock().insert(key, value.clone());
        Some(value)
    }
}

impl<V> RunCache<V> {
    /// Number of values held in memory.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the in-memory layer is empty.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Drops every in-memory value (disk files are left alone).
    pub fn clear(&self) {
        self.lock().clear();
    }

    /// A snapshot of the traffic counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            disk_stores: self.disk_stores.load(Ordering::Relaxed),
            write_failures: self.write_failures.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
        }
    }

    /// Drains the warning events recorded so far (write failures and
    /// quarantines).
    pub fn take_events(&self) -> Vec<Event> {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take_events()
    }

    /// Audits every on-disk entry without modifying anything.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] if the cache has no disk directory or
    /// the directory cannot be listed.
    pub fn verify(&self) -> Result<StoreAudit, ScenarioError> {
        self.audit(false)
    }

    /// Audits every on-disk entry, moving corrupt ones to `.corrupt`
    /// sidecars so subsequent sweeps re-run them cleanly.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] if the cache has no disk directory or
    /// the directory cannot be listed.
    pub fn repair(&self) -> Result<StoreAudit, ScenarioError> {
        self.audit(true)
    }

    fn audit(&self, repair: bool) -> Result<StoreAudit, ScenarioError> {
        let dir = self
            .dir
            .as_ref()
            .ok_or_else(|| ScenarioError::new("cache has no disk directory to audit"))?;
        let mut audit = StoreAudit::default();
        let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
            .map_err(|e| ScenarioError::new(format!("cannot list {}: {e}", dir.display())))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
            .collect();
        paths.sort();
        for path in paths {
            audit.entries += 1;
            match verify_entry(&path) {
                Ok(()) => audit.ok += 1,
                Err(e) => {
                    audit.corrupt += 1;
                    audit.corrupt_paths.push(path.clone());
                    if repair {
                        let key = key_from_file_name(&path).unwrap_or(0);
                        self.quarantine(&path, key, &e);
                        audit.repaired += 1;
                    }
                }
            }
        }
        Ok(audit)
    }

    /// Moves a corrupt entry to its `.corrupt` sidecar and records the
    /// failure. Quarantining is one-shot by construction: the entry
    /// leaves the `*.json` namespace, so later lookups miss cheaply
    /// instead of re-parsing (and re-failing on) the same bytes.
    fn quarantine(&self, path: &Path, key: u64, reason: &ScenarioError) {
        let sidecar = path.with_extension("json.corrupt");
        if sidecar.exists() {
            // Keep the first evidence file; just clear the bad entry.
            let _ = std::fs::remove_file(path);
        } else if std::fs::rename(path, &sidecar).is_err() {
            // Rename failed (e.g. raced with another quarantine): make
            // sure the bad entry at least stops shadowing lookups.
            let _ = std::fs::remove_file(path);
        }
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        self.note(Event {
            cycle: 0, // host-domain event: no simulator cycle exists
            severity: Severity::Warn,
            component: "cache",
            code: "entry_quarantined",
            a: key,
            b: 0,
        });
        if let Some(m) = &self.metrics {
            m.counter("cache.quarantined").add(1);
        }
        let _ = reason; // reason carried via the event code; kept for debuggability in callers
    }

    fn note_write_failure(&self, key: u64, _reason: &ScenarioError) {
        self.write_failures.fetch_add(1, Ordering::Relaxed);
        self.note(Event {
            cycle: 0,
            severity: Severity::Warn,
            component: "cache",
            code: "write_failed",
            a: key,
            b: 0,
        });
        if let Some(m) = &self.metrics {
            m.counter("cache.write_failures").add(1);
        }
    }

    fn note(&self, event: Event) {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .record(event);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<u64, V>> {
        self.mem.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

fn file_name(key: u64) -> String {
    format!("{key:016x}.json")
}

/// Parses the `<hash16>` out of an entry file name.
fn key_from_file_name(path: &Path) -> Option<u64> {
    let stem = path.file_stem()?.to_str()?;
    u64::from_str_radix(stem, 16).ok()
}

/// Wraps `payload` in the `rcoal-cache-entry/v1` envelope: a header
/// line (schema, scenario hash, payload length, FNV-1a 64 checksum)
/// followed by the payload. Header + payload is valid JSONL, so the
/// file keeps its `.json` extension.
pub fn encode_entry(key: u64, payload: &str) -> String {
    let checksum = fnv1a_64(payload.as_bytes());
    format!(
        "{{\"schema\":\"{ENTRY_SCHEMA}\",\"hash\":\"{key:016x}\",\"len\":{},\"checksum\":\"{checksum:016x}\"}}\n{payload}",
        payload.len()
    )
}

/// Unwraps and verifies an envelope produced by [`encode_entry`],
/// returning the payload slice.
///
/// # Errors
///
/// Returns a [`ScenarioError`] naming the first integrity violation:
/// missing header, wrong schema, hash mismatch against `expected_key`,
/// truncated payload, or checksum mismatch.
pub fn decode_entry(expected_key: u64, text: &str) -> Result<&str, ScenarioError> {
    let (header, payload) = text
        .split_once('\n')
        .ok_or_else(|| ScenarioError::new("cache entry has no envelope header"))?;
    let v = crate::json::Value::parse(header)
        .map_err(|e| ScenarioError::new(format!("cache entry header is not JSON: {e}")))?;
    let field = |name: &str| {
        v.get(name)
            .and_then(crate::json::Value::as_str)
            .ok_or_else(|| ScenarioError::new(format!("cache entry header missing `{name}`")))
    };
    if field("schema")? != ENTRY_SCHEMA {
        return Err(ScenarioError::new(format!(
            "cache entry schema is not {ENTRY_SCHEMA}"
        )));
    }
    let hash = u64::from_str_radix(field("hash")?, 16)
        .map_err(|e| ScenarioError::new(format!("cache entry hash is not hex: {e}")))?;
    if hash != expected_key {
        return Err(ScenarioError::new(format!(
            "cache entry hash {hash:016x} does not match key {expected_key:016x}"
        )));
    }
    let len = v
        .get("len")
        .and_then(crate::json::Value::as_u64)
        .ok_or_else(|| ScenarioError::new("cache entry header missing `len`"))?;
    if payload.len() as u64 != len {
        return Err(ScenarioError::new(format!(
            "cache entry payload is {} bytes, header says {len} (torn write?)",
            payload.len()
        )));
    }
    let checksum = u64::from_str_radix(field("checksum")?, 16)
        .map_err(|e| ScenarioError::new(format!("cache entry checksum is not hex: {e}")))?;
    let actual = fnv1a_64(payload.as_bytes());
    if actual != checksum {
        return Err(ScenarioError::new(format!(
            "cache entry checksum mismatch: stored {checksum:016x}, computed {actual:016x}"
        )));
    }
    Ok(payload)
}

/// Verifies one on-disk entry file's envelope (hash taken from the file
/// name).
fn verify_entry(path: &Path) -> Result<(), ScenarioError> {
    let key = key_from_file_name(path)
        .ok_or_else(|| ScenarioError::new("entry file name is not a 16-hex-digit hash"))?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| ScenarioError::new(format!("cannot read {}: {e}", path.display())))?;
    decode_entry(key, &text).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcoal_core::CoalescingPolicy;

    fn scenario(seed: u64) -> Scenario {
        Scenario::new(CoalescingPolicy::Baseline, 4, 32).with_seed(seed)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rcoal-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn u64_codec() -> (EncodeFn<u64>, DecodeFn<u64>) {
        let encode: EncodeFn<u64> = |v| Some(v.to_string());
        let decode: DecodeFn<u64> = |s| {
            s.trim()
                .parse()
                .map_err(|e| ScenarioError::new(format!("{e}")))
        };
        (encode, decode)
    }

    #[test]
    fn memory_cache_hits_after_insert() {
        let cache: RunCache<u64> = RunCache::in_memory();
        let s = scenario(1);
        assert_eq!(cache.get(&s), None);
        assert!(!cache.contains(&s));
        cache.insert(&s, 99);
        assert_eq!(cache.get(&s), Some(99));
        assert!(cache.contains(&s));
        assert_eq!(cache.len(), 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.disk_hits, 0);
        assert_eq!((stats.write_failures, stats.quarantined), (0, 0));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distinct_scenarios_do_not_collide() {
        let cache: RunCache<u64> = RunCache::in_memory();
        cache.insert(&scenario(1), 10);
        cache.insert(&scenario(2), 20);
        assert_eq!(cache.get(&scenario(1)), Some(10));
        assert_eq!(cache.get(&scenario(2)), Some(20));
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn disk_layer_survives_a_fresh_cache() {
        let dir = temp_dir("disk");
        let (encode, decode) = u64_codec();
        let s = scenario(7);
        {
            let cache = RunCache::with_disk(&dir, encode, decode).unwrap();
            cache.insert(&s, 1234);
            assert_eq!(cache.stats().disk_stores, 1);
        }
        // A brand-new cache (empty memory) reads the file back.
        let cache = RunCache::with_disk(&dir, encode, decode).unwrap();
        assert!(cache.contains(&s));
        assert_eq!(cache.get(&s), Some(1234));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.disk_hits), (1, 1));
        // Promoted to memory: a second get is a memory hit.
        assert_eq!(cache.get(&s), Some(1234));
        assert_eq!(cache.stats().disk_hits, 1);
        let file = dir.join(format!("{}.json", s.hash_hex()));
        assert!(file.exists(), "{file:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn entries_are_enveloped_and_round_trip() {
        let payload = "{\"x\":1}";
        let encoded = encode_entry(0xabcd, payload);
        assert!(encoded.starts_with(&format!("{{\"schema\":\"{ENTRY_SCHEMA}\"")));
        assert_eq!(decode_entry(0xabcd, &encoded).unwrap(), payload);
        // Wrong key: the entry was stored under a different scenario.
        assert!(decode_entry(0xabce, &encoded).is_err());
        // Truncation (torn write) is detected via `len`.
        let torn = &encoded[..encoded.len() - 2];
        assert!(decode_entry(0xabcd, torn)
            .unwrap_err()
            .to_string()
            .contains("torn"));
        // Bit rot is detected via the checksum.
        let mut rotted = encoded.clone();
        let last = rotted.len() - 1;
        // Payload "{\"x\":1}" ends in '}'; replace with ']' keeps len.
        rotted.replace_range(last..last + 1, "]");
        assert!(decode_entry(0xabcd, &rotted)
            .unwrap_err()
            .to_string()
            .contains("checksum"));
    }

    #[test]
    fn memory_only_values_are_not_persisted() {
        let dir = temp_dir("memonly");
        let encode: EncodeFn<u64> = |_| None;
        let decode: DecodeFn<u64> = |_| Err(ScenarioError::new("never"));
        let cache = RunCache::with_disk(&dir, encode, decode).unwrap();
        let s = scenario(3);
        cache.insert(&s, 5);
        assert_eq!(cache.get(&s), Some(5));
        assert_eq!(cache.stats().disk_stores, 0);
        assert!(!dir.join(format!("{}.json", s.hash_hex())).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_disk_files_are_quarantined_once() {
        let dir = temp_dir("corrupt");
        let (encode, decode) = u64_codec();
        let cache = RunCache::with_disk(&dir, encode, decode).unwrap();
        let s = scenario(8);
        let entry = dir.join(format!("{}.json", s.hash_hex()));
        std::fs::write(&entry, "not an envelope").unwrap();
        assert_eq!(cache.get(&s), None);
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.quarantined), (1, 1));
        // The bad entry moved aside: evidence preserved, lookups clean.
        assert!(!entry.exists());
        assert!(dir.join(format!("{}.json.corrupt", s.hash_hex())).exists());
        let events = cache.take_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].code, "entry_quarantined");
        // Second lookup is a plain miss — no re-quarantine, no event.
        assert_eq!(cache.get(&s), None);
        assert_eq!(cache.stats().quarantined, 1);
        assert!(cache.take_events().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn undecodable_payload_is_quarantined_despite_clean_envelope() {
        let dir = temp_dir("undecodable");
        let (encode, decode) = u64_codec();
        let cache = RunCache::with_disk(&dir, encode, decode).unwrap();
        let s = scenario(9);
        // Valid envelope, payload the codec rejects.
        let entry = dir.join(format!("{}.json", s.hash_hex()));
        std::fs::write(&entry, encode_entry(s.content_hash(), "not a number")).unwrap();
        assert_eq!(cache.get(&s), None);
        assert_eq!(cache.stats().quarantined, 1);
        assert!(!entry.exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_write_failures_are_counted_not_swallowed() {
        let dir = temp_dir("iofail");
        let (encode, decode) = u64_codec();
        // Period 1: every write op faults.
        let cache = RunCache::with_disk(&dir, encode, decode)
            .unwrap()
            .with_chaos(ChaosPlan::seeded(3).with_io_failures(1));
        let s = scenario(4);
        cache.insert(&s, 77);
        // The value still serves from memory; the loss is counted.
        assert_eq!(cache.get(&s), Some(77));
        let stats = cache.stats();
        assert_eq!((stats.disk_stores, stats.write_failures), (0, 1));
        assert!(!dir.join(format!("{}.json", s.hash_hex())).exists());
        let events = cache.take_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].code, "write_failed");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn chaos_corruption_is_caught_on_read() {
        let dir = temp_dir("chaoscorrupt");
        let (encode, decode) = u64_codec();
        let writer = RunCache::with_disk(&dir, encode, decode)
            .unwrap()
            .with_chaos(ChaosPlan::seeded(5).with_corruption(1));
        let s = scenario(6);
        writer.insert(&s, 42);
        assert_eq!(writer.stats().disk_stores, 1, "writer believed the write");
        drop(writer);
        // A clean reader detects the corruption and quarantines.
        let reader = RunCache::with_disk(&dir, encode, decode).unwrap();
        assert_eq!(reader.get(&s), None);
        assert_eq!(reader.stats().quarantined, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verify_and_repair_audit_the_directory() {
        let dir = temp_dir("audit");
        let (encode, decode) = u64_codec();
        let cache = RunCache::with_disk(&dir, encode, decode).unwrap();
        cache.insert(&scenario(1), 1);
        cache.insert(&scenario(2), 2);
        // Plant one torn entry by hand.
        let s = scenario(3);
        let full = encode_entry(s.content_hash(), "333");
        std::fs::write(
            dir.join(format!("{}.json", s.hash_hex())),
            &full[..full.len() - 1],
        )
        .unwrap();

        let audit = cache.verify().unwrap();
        assert_eq!((audit.entries, audit.ok, audit.corrupt), (3, 2, 1));
        assert_eq!(audit.repaired, 0, "verify is read-only");
        assert!(!audit.is_clean());
        assert_eq!(audit.corrupt_paths.len(), 1);
        // The torn entry is still in place after verify...
        assert!(audit.corrupt_paths[0].exists());

        let repaired = cache.repair().unwrap();
        assert_eq!((repaired.corrupt, repaired.repaired), (1, 1));
        // ...and gone (quarantined) after repair.
        assert!(!audit.corrupt_paths[0].exists());
        let clean = cache.verify().unwrap();
        assert_eq!((clean.entries, clean.corrupt), (2, 0));
        assert!(clean.is_clean());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn metrics_mirror_failure_counters() {
        let dir = temp_dir("metrics");
        let (encode, decode) = u64_codec();
        let registry = MetricsRegistry::new();
        let cache = RunCache::with_disk(&dir, encode, decode)
            .unwrap()
            .with_chaos(ChaosPlan::seeded(1).with_io_failures(1))
            .with_metrics(registry.clone());
        cache.insert(&scenario(1), 1);
        assert_eq!(registry.counter("cache.write_failures").get(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cache_is_shareable_across_threads() {
        let cache: std::sync::Arc<RunCache<u64>> = std::sync::Arc::new(RunCache::in_memory());
        let handles: Vec<_> = (0u64..4)
            .map(|t| {
                let cache = std::sync::Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..16 {
                        cache.insert(&scenario(i), i * 100 + t);
                        assert!(cache.get(&scenario(i)).is_some());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cache.len(), 16);
    }
}
