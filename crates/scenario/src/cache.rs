//! Content-addressed run cache.
//!
//! A [`RunCache`] memoizes run results keyed by
//! [`Scenario::content_hash`]: an in-memory map always, plus an optional
//! on-disk JSON layer (one file per scenario, named by the 16-hex-digit
//! hash). Because the key is derived from the *canonical serialized
//! scenario* — never from addresses or process state — a cache written
//! by one process is valid in any other, and a hit must be bit-identical
//! to a fresh run by the workspace's determinism contract (results are a
//! pure function of the scenario).
//!
//! The cache is value-generic. Disk persistence needs a codec — a pair
//! of plain functions so the value type's crate (not this one) owns its
//! serialization. A codec may decline to encode a particular value
//! (e.g. runs carrying bulky telemetry) by returning `None`; such values
//! stay memory-only.

use crate::scenario::{Scenario, ScenarioError};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// Serializes a cached value to its on-disk JSON form; `None` keeps the
/// value memory-only.
pub type EncodeFn<V> = fn(&V) -> Option<String>;

/// Parses a value back from its on-disk form.
pub type DecodeFn<V> = fn(&str) -> Result<V, ScenarioError>;

/// Cache traffic counters (monotonic since construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from memory or disk.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// The subset of `hits` served by reading a disk file.
    pub disk_hits: u64,
    /// Values written to disk.
    pub disk_stores: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`; `0` when there was no traffic.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// In-memory + optional on-disk memo keyed by scenario content hash.
///
/// All methods take `&self`; the cache is safe to share across the
/// worker threads of a sweep.
pub struct RunCache<V> {
    mem: Mutex<HashMap<u64, V>>,
    dir: Option<PathBuf>,
    encode: EncodeFn<V>,
    decode: Option<DecodeFn<V>>,
    hits: AtomicU64,
    misses: AtomicU64,
    disk_hits: AtomicU64,
    disk_stores: AtomicU64,
}

impl<V> std::fmt::Debug for RunCache<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunCache")
            .field("len", &self.len())
            .field("dir", &self.dir)
            .field("stats", &self.stats())
            .finish()
    }
}

impl<V: Clone> Default for RunCache<V> {
    fn default() -> Self {
        Self::in_memory()
    }
}

impl<V: Clone> RunCache<V> {
    /// A memory-only cache.
    pub fn in_memory() -> Self {
        RunCache {
            mem: Mutex::new(HashMap::new()),
            dir: None,
            encode: |_| None,
            decode: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            disk_stores: AtomicU64::new(0),
        }
    }

    /// A cache backed by directory `dir` (created if absent): values a
    /// codec encodes persist as `<hash>.json` files and are readable by
    /// later processes.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] if the directory cannot be created.
    pub fn with_disk(
        dir: impl Into<PathBuf>,
        encode: EncodeFn<V>,
        decode: DecodeFn<V>,
    ) -> Result<Self, ScenarioError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| {
            ScenarioError::new(format!("cannot create cache dir {}: {e}", dir.display()))
        })?;
        let mut cache = Self::in_memory();
        cache.dir = Some(dir);
        cache.encode = encode;
        cache.decode = Some(decode);
        Ok(cache)
    }

    /// Looks `scenario` up, consulting memory first, then disk. A disk
    /// hit is promoted into memory. Counted in [`RunCache::stats`].
    pub fn get(&self, scenario: &Scenario) -> Option<V> {
        let key = scenario.content_hash();
        if let Some(v) = self.lock().get(&key).cloned() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(v);
        }
        if let Some(v) = self.read_disk(scenario, key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
            return Some(v);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Whether `scenario` is cached (memory or disk), without touching
    /// the traffic counters.
    pub fn contains(&self, scenario: &Scenario) -> bool {
        let key = scenario.content_hash();
        if self.lock().contains_key(&key) {
            return true;
        }
        self.dir
            .as_ref()
            .is_some_and(|dir| dir.join(Self::file_name(key)).exists())
    }

    /// Stores `value` under `scenario`'s hash: into memory always, and
    /// to disk when a directory is attached and the codec encodes it.
    pub fn insert(&self, scenario: &Scenario, value: V) {
        let key = scenario.content_hash();
        if let Some(dir) = &self.dir {
            if let Some(encoded) = (self.encode)(&value) {
                let path = dir.join(Self::file_name(key));
                // Write-then-rename so readers never see a torn file.
                let tmp = dir.join(format!("{:016x}.tmp", key));
                let ok =
                    std::fs::write(&tmp, encoded).is_ok() && std::fs::rename(&tmp, &path).is_ok();
                if ok {
                    self.disk_stores.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.lock().insert(key, value);
    }

    fn read_disk(&self, _scenario: &Scenario, key: u64) -> Option<V> {
        let dir = self.dir.as_ref()?;
        let decode = self.decode?;
        let text = std::fs::read_to_string(dir.join(Self::file_name(key))).ok()?;
        let value = decode(&text).ok()?;
        self.lock().insert(key, value.clone());
        Some(value)
    }
}

impl<V> RunCache<V> {
    /// Number of values held in memory.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the in-memory layer is empty.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Drops every in-memory value (disk files are left alone).
    pub fn clear(&self) {
        self.lock().clear();
    }

    /// A snapshot of the traffic counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            disk_stores: self.disk_stores.load(Ordering::Relaxed),
        }
    }

    fn file_name(key: u64) -> String {
        format!("{key:016x}.json")
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<u64, V>> {
        self.mem.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcoal_core::CoalescingPolicy;

    fn scenario(seed: u64) -> Scenario {
        Scenario::new(CoalescingPolicy::Baseline, 4, 32).with_seed(seed)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rcoal-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memory_cache_hits_after_insert() {
        let cache: RunCache<u64> = RunCache::in_memory();
        let s = scenario(1);
        assert_eq!(cache.get(&s), None);
        assert!(!cache.contains(&s));
        cache.insert(&s, 99);
        assert_eq!(cache.get(&s), Some(99));
        assert!(cache.contains(&s));
        assert_eq!(cache.len(), 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.disk_hits, 0);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distinct_scenarios_do_not_collide() {
        let cache: RunCache<u64> = RunCache::in_memory();
        cache.insert(&scenario(1), 10);
        cache.insert(&scenario(2), 20);
        assert_eq!(cache.get(&scenario(1)), Some(10));
        assert_eq!(cache.get(&scenario(2)), Some(20));
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn disk_layer_survives_a_fresh_cache() {
        let dir = temp_dir("disk");
        let encode: EncodeFn<u64> = |v| Some(v.to_string());
        let decode: DecodeFn<u64> = |s| {
            s.trim()
                .parse()
                .map_err(|e| ScenarioError::new(format!("{e}")))
        };
        let s = scenario(7);
        {
            let cache = RunCache::with_disk(&dir, encode, decode).unwrap();
            cache.insert(&s, 1234);
            assert_eq!(cache.stats().disk_stores, 1);
        }
        // A brand-new cache (empty memory) reads the file back.
        let cache = RunCache::with_disk(&dir, encode, decode).unwrap();
        assert!(cache.contains(&s));
        assert_eq!(cache.get(&s), Some(1234));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.disk_hits), (1, 1));
        // Promoted to memory: a second get is a memory hit.
        assert_eq!(cache.get(&s), Some(1234));
        assert_eq!(cache.stats().disk_hits, 1);
        let file = dir.join(format!("{}.json", s.hash_hex()));
        assert!(file.exists(), "{file:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn memory_only_values_are_not_persisted() {
        let dir = temp_dir("memonly");
        let encode: EncodeFn<u64> = |_| None;
        let decode: DecodeFn<u64> = |_| Err(ScenarioError::new("never"));
        let cache = RunCache::with_disk(&dir, encode, decode).unwrap();
        let s = scenario(3);
        cache.insert(&s, 5);
        assert_eq!(cache.get(&s), Some(5));
        assert_eq!(cache.stats().disk_stores, 0);
        assert!(!dir.join(format!("{}.json", s.hash_hex())).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_disk_files_fall_through_to_miss() {
        let dir = temp_dir("corrupt");
        let encode: EncodeFn<u64> = |v| Some(v.to_string());
        let decode: DecodeFn<u64> = |s| {
            s.trim()
                .parse()
                .map_err(|e| ScenarioError::new(format!("{e}")))
        };
        let cache = RunCache::with_disk(&dir, encode, decode).unwrap();
        let s = scenario(8);
        std::fs::write(dir.join(format!("{}.json", s.hash_hex())), "not a number").unwrap();
        assert_eq!(cache.get(&s), None);
        assert_eq!(cache.stats().misses, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cache_is_shareable_across_threads() {
        let cache: std::sync::Arc<RunCache<u64>> = std::sync::Arc::new(RunCache::in_memory());
        let handles: Vec<_> = (0u64..4)
            .map(|t| {
                let cache = std::sync::Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..16 {
                        cache.insert(&scenario(i), i * 100 + t);
                        assert!(cache.get(&scenario(i)).is_some());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cache.len(), 16);
    }
}
