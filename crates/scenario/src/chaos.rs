//! Seeded host-fault injection for chaos testing the run store and the
//! sweep runner.
//!
//! PR 1 proved the *simulated GPU* tolerates injected DRAM/interconnect
//! faults; this module brings the same discipline to the host layer
//! that runs it. A [`ChaosPlan`] is a deterministic schedule of
//! host-level faults — worker panics, disk-write failures, payload
//! corruption, torn writes, and a mid-sweep process abort — keyed by a
//! seed and an operation index, so a chaos run is exactly reproducible
//! (the same plan fires on the same operations every time) and the
//! tests can compute the expected fault set with the same functions the
//! injection uses.
//!
//! The plan is carried by [`crate::RunCache`] (write-path faults) and
//! by the experiment layer's sweep runner (worker panics and the abort
//! switch). A default-constructed plan is inert: every predicate is
//! `false`, and production code pays only an `Option`-style check.

/// A deterministic schedule of injected host faults.
///
/// Each fault class has an independent period `p`: with seed `s`, the
/// class fires on operation `op` iff `mix(s ^ salt, op) % p == 0`, so
/// roughly one in `p` operations faults, spread pseudo-randomly but
/// reproducibly. `None` (the default) disables the class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosPlan {
    /// Seed shared by every fault class (classes are decorrelated by
    /// per-class salts).
    pub seed: u64,
    /// Worker-panic period: the sweep runner panics instead of running
    /// the scheduled task.
    pub panic_period: Option<u64>,
    /// Disk-write failure period: the run store drops the write on the
    /// floor (counted, never silently).
    pub io_fail_period: Option<u64>,
    /// Payload-corruption period: a byte of the encoded payload is
    /// flipped after checksumming, simulating bit rot / decode
    /// corruption that the entry checksum must catch.
    pub corrupt_period: Option<u64>,
    /// Torn-write period: only a prefix of the entry reaches disk,
    /// simulating a crash or reordering between write and rename.
    pub torn_write_period: Option<u64>,
    /// Process abort after this many journal records — the
    /// kill-and-resume switch (`std::process::abort`, no unwinding, no
    /// destructors: the honest crash).
    pub abort_after: Option<u64>,
}

impl ChaosPlan {
    /// A plan that injects nothing (the default).
    pub fn inert() -> Self {
        Self::default()
    }

    /// A plan with this seed and no faults armed.
    pub fn seeded(seed: u64) -> Self {
        ChaosPlan {
            seed,
            ..Self::default()
        }
    }

    /// Whether every fault class is disabled.
    pub fn is_inert(&self) -> bool {
        self.panic_period.is_none()
            && self.io_fail_period.is_none()
            && self.corrupt_period.is_none()
            && self.torn_write_period.is_none()
            && self.abort_after.is_none()
    }

    /// Arms worker-panic injection with period `p`.
    #[must_use]
    pub fn with_panics(mut self, p: u64) -> Self {
        self.panic_period = Some(p);
        self
    }

    /// Arms disk-write-failure injection with period `p`.
    #[must_use]
    pub fn with_io_failures(mut self, p: u64) -> Self {
        self.io_fail_period = Some(p);
        self
    }

    /// Arms payload-corruption injection with period `p`.
    #[must_use]
    pub fn with_corruption(mut self, p: u64) -> Self {
        self.corrupt_period = Some(p);
        self
    }

    /// Arms torn-write injection with period `p`.
    #[must_use]
    pub fn with_torn_writes(mut self, p: u64) -> Self {
        self.torn_write_period = Some(p);
        self
    }

    /// Arms the process-abort switch after `n` journal records.
    #[must_use]
    pub fn with_abort_after(mut self, n: u64) -> Self {
        self.abort_after = Some(n);
        self
    }

    /// Whether the worker-panic fault fires on task `op`.
    pub fn panics_on(&self, op: u64) -> bool {
        fires(self.panic_period, self.seed ^ SALT_PANIC, op)
    }

    /// Whether the disk-write-failure fault fires on store write `op`.
    pub fn io_fails_on(&self, op: u64) -> bool {
        fires(self.io_fail_period, self.seed ^ SALT_IO, op)
    }

    /// Whether the corruption fault fires on store write `op`.
    pub fn corrupts_on(&self, op: u64) -> bool {
        fires(self.corrupt_period, self.seed ^ SALT_CORRUPT, op)
    }

    /// Whether the torn-write fault fires on store write `op`.
    pub fn tears_on(&self, op: u64) -> bool {
        fires(self.torn_write_period, self.seed ^ SALT_TORN, op)
    }
}

const SALT_PANIC: u64 = 0x70616e6963; // "panic"
const SALT_IO: u64 = 0x696f_6661696c; // "iofail"
const SALT_CORRUPT: u64 = 0x636f7272; // "corr"
const SALT_TORN: u64 = 0x746f726e; // "torn"

fn fires(period: Option<u64>, seed: u64, op: u64) -> bool {
    match period {
        None | Some(0) => false,
        Some(p) => mix(seed, op).is_multiple_of(p),
    }
}

/// SplitMix64 finalizer over `(seed, op)` — the standard avalanche mix,
/// good enough to decorrelate fault classes and spread fault positions.
fn mix(seed: u64, op: u64) -> u64 {
    let mut z = seed ^ op.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plan_never_fires() {
        let plan = ChaosPlan::inert();
        assert!(plan.is_inert());
        for op in 0..1000 {
            assert!(!plan.panics_on(op));
            assert!(!plan.io_fails_on(op));
            assert!(!plan.corrupts_on(op));
            assert!(!plan.tears_on(op));
        }
        // Period zero is also inert (not a division by zero).
        let zero = ChaosPlan::seeded(1).with_panics(0);
        assert!(!zero.panics_on(0));
    }

    #[test]
    fn schedules_are_deterministic_and_roughly_periodic() {
        let plan = ChaosPlan::seeded(42).with_corruption(4);
        let fired: Vec<u64> = (0..1000).filter(|&op| plan.corrupts_on(op)).collect();
        let again: Vec<u64> = (0..1000).filter(|&op| plan.corrupts_on(op)).collect();
        assert_eq!(fired, again, "same plan, same schedule");
        assert!(
            fired.len() > 150 && fired.len() < 350,
            "period 4 fires ~1/4 of the time, got {}",
            fired.len()
        );
    }

    #[test]
    fn classes_and_seeds_are_decorrelated() {
        let plan = ChaosPlan::seeded(7).with_io_failures(3).with_torn_writes(3);
        let io: Vec<u64> = (0..400).filter(|&op| plan.io_fails_on(op)).collect();
        let torn: Vec<u64> = (0..400).filter(|&op| plan.tears_on(op)).collect();
        assert_ne!(io, torn, "same period, different salts");
        let other = ChaosPlan::seeded(8).with_io_failures(3);
        let io2: Vec<u64> = (0..400).filter(|&op| other.io_fails_on(op)).collect();
        assert_ne!(io, io2, "seed changes the schedule");
    }
}
