//! Append-only sweep journal (`rcoal-journal/v1`).
//!
//! The journal is the sweep runner's crash-safe progress record: one
//! JSON line per completed scenario, appended (and flushed) the moment
//! the run's result has been persisted to the store. A process killed
//! mid-sweep leaves a journal whose lines name exactly the work that
//! does not need to be redone; re-opening the journal replays them and
//! resumes appending.
//!
//! Recovery semantics are deliberately boring:
//!
//! * A **torn tail** — a final line cut short by the crash — is
//!   expected, detected, and truncated away on open (the record it
//!   described was never acknowledged, so dropping it is safe: the
//!   worst case is re-running one scenario whose result the store most
//!   likely already serves).
//! * **Malformed interior lines** are counted and skipped, never
//!   propagated: the journal is an optimization over the
//!   content-addressed store, so losing a line costs one redundant
//!   simulation, not correctness.
//! * The journal never *decides* what a result is — results live in the
//!   checksummed store; the journal only proves completion, which is
//!   why replaying it can never corrupt a sweep.

use crate::json::Value;
use crate::scenario::ScenarioError;
use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// Schema identifier written into every journal line.
pub const JOURNAL_SCHEMA: &str = "rcoal-journal/v1";

/// What re-opening a journal found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JournalReplay {
    /// Completed scenario content hashes, in append order (duplicates
    /// preserved — a hash may complete again in a later sweep).
    pub completed: Vec<u64>,
    /// Whether a torn (crash-truncated) final line was dropped.
    pub torn_tail: bool,
    /// Interior lines that failed to parse and were skipped.
    pub malformed: u64,
}

impl JournalReplay {
    /// The distinct completed hashes, for membership tests.
    pub fn completed_set(&self) -> HashSet<u64> {
        self.completed.iter().copied().collect()
    }
}

/// An append-only, crash-tolerant record of completed scenario hashes.
///
/// All methods take `&self`; the journal is safe to share across the
/// worker threads of a sweep (appends are serialized by a mutex and
/// each record is written with a single `write_all` + flush).
#[derive(Debug)]
pub struct SweepJournal {
    path: PathBuf,
    file: Mutex<File>,
    appended: AtomicU64,
    replay: JournalReplay,
}

impl SweepJournal {
    /// Opens (creating if absent) the journal at `path`, replaying any
    /// existing records and truncating a torn tail left by a crash.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] if the file cannot be read, repaired,
    /// or opened for append.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self, ScenarioError> {
        let path = path.into();
        let mut replay = JournalReplay::default();
        if path.exists() {
            let mut file = File::open(&path)
                .map_err(|e| ScenarioError::new(format!("cannot read {}: {e}", path.display())))?;
            let mut text = String::new();
            file.read_to_string(&mut text)
                .map_err(|e| ScenarioError::new(format!("cannot read {}: {e}", path.display())))?;
            drop(file);
            let keep_bytes = replay_lines(&text, &mut replay);
            if keep_bytes < text.len() {
                // Drop the torn tail so future appends start on a clean
                // line boundary.
                let f = OpenOptions::new().write(true).open(&path).map_err(|e| {
                    ScenarioError::new(format!("cannot repair {}: {e}", path.display()))
                })?;
                f.set_len(keep_bytes as u64).map_err(|e| {
                    ScenarioError::new(format!("cannot truncate {}: {e}", path.display()))
                })?;
                f.sync_all().ok();
            }
        }
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| ScenarioError::new(format!("cannot open {}: {e}", path.display())))?;
        // Defensive: append mode positions at EOF already; make it
        // explicit so a platform quirk can't interleave records.
        file.seek(SeekFrom::End(0))
            .map_err(|e| ScenarioError::new(format!("cannot seek {}: {e}", path.display())))?;
        Ok(SweepJournal {
            path,
            file: Mutex::new(file),
            appended: AtomicU64::new(0),
            replay,
        })
    }

    /// The journal's on-disk location.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// What opening this journal replayed from previous processes.
    pub fn replay(&self) -> &JournalReplay {
        &self.replay
    }

    /// Records this process has journaled (excludes replayed ones).
    pub fn appended(&self) -> u64 {
        self.appended.load(Ordering::Relaxed)
    }

    /// Appends a completed-scenario record and flushes it to the OS.
    ///
    /// Durability note: flush pushes the record into the page cache
    /// (surviving a process kill); [`SweepJournal::sync`] is the
    /// checkpoint that survives power loss.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] if the append or flush fails.
    pub fn record_completed(&self, hash: u64) -> Result<(), ScenarioError> {
        let line =
            format!("{{\"schema\":\"{JOURNAL_SCHEMA}\",\"event\":\"completed\",\"hash\":\"{hash:016x}\"}}\n");
        let mut file = self.file.lock().unwrap_or_else(PoisonError::into_inner);
        file.write_all(line.as_bytes())
            .and_then(|()| file.flush())
            .map_err(|e| {
                ScenarioError::new(format!("cannot append to {}: {e}", self.path.display()))
            })?;
        drop(file);
        self.appended.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Checkpoints the journal: fsyncs everything appended so far.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] if the fsync fails.
    pub fn sync(&self) -> Result<(), ScenarioError> {
        self.file
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .sync_all()
            .map_err(|e| ScenarioError::new(format!("cannot sync {}: {e}", self.path.display())))
    }
}

/// Parses journal text into `replay`, returning the byte length of the
/// well-formed prefix (anything past it is a torn tail to truncate).
fn replay_lines(text: &str, replay: &mut JournalReplay) -> usize {
    let mut keep = 0usize;
    let mut pos = 0usize;
    for line in text.split_inclusive('\n') {
        let complete = line.ends_with('\n');
        pos += line.len();
        let trimmed = line.trim_end_matches('\n');
        if trimmed.is_empty() {
            keep = pos;
            continue;
        }
        match parse_line(trimmed) {
            Some(hash) => {
                if complete {
                    replay.completed.push(hash);
                    keep = pos;
                } else {
                    // A parseable but unterminated record: treat as torn
                    // (the trailing newline is part of the commit).
                    replay.torn_tail = true;
                }
            }
            None if complete => {
                replay.malformed += 1;
                keep = pos;
            }
            None => {
                replay.torn_tail = true;
            }
        }
    }
    keep
}

/// Parses one journal line to its completed hash; `None` if the line is
/// not a well-formed completed record (malformed, wrong schema, or an
/// event this version does not know).
fn parse_line(line: &str) -> Option<u64> {
    let v = Value::parse(line).ok()?;
    if v.get("schema").and_then(Value::as_str) != Some(JOURNAL_SCHEMA) {
        return None;
    }
    if v.get("event").and_then(Value::as_str) != Some("completed") {
        return None;
    }
    let hex = v.get("hash").and_then(Value::as_str)?;
    u64::from_str_radix(hex, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "rcoal-journal-test-{tag}-{}.jsonl",
            std::process::id()
        ))
    }

    #[test]
    fn append_and_replay_round_trip() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let journal = SweepJournal::open(&path).unwrap();
            assert!(journal.replay().completed.is_empty());
            journal.record_completed(0xdead).unwrap();
            journal.record_completed(0xbeef).unwrap();
            journal.record_completed(0xdead).unwrap();
            journal.sync().unwrap();
            assert_eq!(journal.appended(), 3);
        }
        let journal = SweepJournal::open(&path).unwrap();
        let replay = journal.replay();
        assert_eq!(replay.completed, vec![0xdead, 0xbeef, 0xdead]);
        assert_eq!(replay.completed_set().len(), 2);
        assert!(!replay.torn_tail);
        assert_eq!(replay.malformed, 0);
        assert_eq!(journal.appended(), 0, "replayed records are not appends");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_and_truncated() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        {
            let journal = SweepJournal::open(&path).unwrap();
            journal.record_completed(1).unwrap();
            journal.record_completed(2).unwrap();
        }
        // Simulate a crash mid-append: a truncated final record.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"schema\":\"rcoal-journal/v1\",\"event\":\"comp");
        std::fs::write(&path, &text).unwrap();

        let journal = SweepJournal::open(&path).unwrap();
        assert_eq!(journal.replay().completed, vec![1, 2]);
        assert!(journal.replay().torn_tail);
        // The tail was physically truncated, so a new append starts on a
        // clean boundary and a third open sees three clean records.
        journal.record_completed(3).unwrap();
        drop(journal);
        let third = SweepJournal::open(&path).unwrap();
        assert_eq!(third.replay().completed, vec![1, 2, 3]);
        assert!(!third.replay().torn_tail);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn parseable_but_unterminated_tail_counts_as_torn() {
        let path = temp_path("unterminated");
        let _ = std::fs::remove_file(&path);
        std::fs::write(
            &path,
            "{\"schema\":\"rcoal-journal/v1\",\"event\":\"completed\",\"hash\":\"0000000000000001\"}\n{\"schema\":\"rcoal-journal/v1\",\"event\":\"completed\",\"hash\":\"0000000000000002\"}",
        )
        .unwrap();
        let journal = SweepJournal::open(&path).unwrap();
        assert_eq!(journal.replay().completed, vec![1], "no newline, no commit");
        assert!(journal.replay().torn_tail);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn malformed_interior_lines_are_counted_and_skipped() {
        let path = temp_path("malformed");
        let _ = std::fs::remove_file(&path);
        std::fs::write(
            &path,
            "not json at all\n{\"schema\":\"rcoal-journal/v1\",\"event\":\"completed\",\"hash\":\"00000000000000aa\"}\n{\"schema\":\"rcoal-metrics/v1\"}\n",
        )
        .unwrap();
        let journal = SweepJournal::open(&path).unwrap();
        assert_eq!(journal.replay().completed, vec![0xaa]);
        assert_eq!(journal.replay().malformed, 2);
        assert!(!journal.replay().torn_tail);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn concurrent_appends_all_land() {
        let path = temp_path("concurrent");
        let _ = std::fs::remove_file(&path);
        let journal = std::sync::Arc::new(SweepJournal::open(&path).unwrap());
        let handles: Vec<_> = (0u64..4)
            .map(|t| {
                let journal = std::sync::Arc::clone(&journal);
                std::thread::spawn(move || {
                    for i in 0..25 {
                        journal.record_completed(t * 100 + i).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(journal.appended(), 100);
        drop(journal);
        let replay = SweepJournal::open(&path).unwrap();
        assert_eq!(replay.replay().completed.len(), 100);
        assert_eq!(replay.replay().malformed, 0, "no interleaved lines");
        std::fs::remove_file(&path).unwrap();
    }
}
