//! Minimal pure-std JSON model, parser, and writer.
//!
//! The workspace has no serde; this module follows the same conventions
//! as `rcoal-telemetry`'s hand-written serialization, generalized into a
//! small document model so scenario files can be *parsed* as well as
//! written.
//!
//! Numbers are stored as their source **literal** ([`Value::Num`] holds
//! the original text). Scenario seeds are full-range `u64`s which do not
//! survive a round-trip through `f64` (53-bit mantissa), so the model
//! never converts a number it merely transports — callers pick the
//! interpretation (`as_u64`, `as_f64`, ...) at the leaf.

use std::fmt;

/// Escapes a string for embedding in a JSON string literal (same
/// convention as `rcoal_telemetry::json_escape`).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A parse error with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// A JSON document node.
///
/// Object member order is preserved, so a [`Value`] built field by field
/// serializes in exactly that order — the property canonical scenario
/// hashing relies on.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its literal text (never routed through `f64`).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object as ordered `(key, value)` members.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// A number node for a `u64` (exact at any magnitude).
    pub fn u64(n: u64) -> Value {
        Value::Num(n.to_string())
    }

    /// A number node for a `usize`.
    pub fn usize(n: usize) -> Value {
        Value::Num(n.to_string())
    }

    /// A number node for an `f64`, using Rust's shortest round-trip
    /// formatting. Non-finite values have no JSON form and become `null`.
    pub fn f64(x: f64) -> Value {
        if x.is_finite() {
            // `{:?}` prints the shortest decimal that parses back to the
            // same f64, and always includes a '.' or exponent.
            Value::Num(format!("{x:?}"))
        } else {
            Value::Null
        }
    }

    /// A string node.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Member lookup on an object (first match); `None` on other node
    /// kinds.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string node.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean node.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This number as an exact `u64`, if the literal is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// This number as an exact `usize`, if the literal is one.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Value::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// This number as an exact `u32`, if the literal is one.
    pub fn as_u32(&self) -> Option<u32> {
        match self {
            Value::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// This number as an `f64` (lossy for > 53-bit integers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The elements, if this is an array node.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The ordered members, if this is an object node.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace), members in stored order.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(s) => out.push_str(s),
            Value::Str(s) => {
                out.push('"');
                out.push_str(&json_escape(s));
                out.push('"');
            }
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&json_escape(k));
                    out.push_str("\":");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document, requiring it to span the whole input.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] locating the first syntax problem.
    pub fn parse(input: &str) -> Result<Value, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON document"));
        }
        Ok(v)
    }
}

/// Convenience builder for object nodes, preserving insertion order.
#[derive(Debug, Clone, Default)]
pub struct ObjBuilder {
    members: Vec<(String, Value)>,
}

impl ObjBuilder {
    /// An empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a member.
    #[must_use]
    pub fn field(mut self, key: &str, value: Value) -> Self {
        self.members.push((key.to_string(), value));
        self
    }

    /// Appends a member only when `value` is `Some`.
    #[must_use]
    pub fn opt_field(self, key: &str, value: Option<Value>) -> Self {
        match value {
            Some(v) => self.field(key, v),
            None => self,
        }
    }

    /// Finishes the object.
    pub fn build(self) -> Value {
        Value::Obj(self.members)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            msg: msg.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX for the
                                // low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(cp)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                None
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                            continue; // hex4 advanced pos itself
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("unterminated"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected exponent digits"));
            }
        }
        let lit = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        Ok(Value::Num(lit.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Value::parse("null"), Ok(Value::Null));
        assert_eq!(Value::parse("true"), Ok(Value::Bool(true)));
        assert_eq!(Value::parse(" false "), Ok(Value::Bool(false)));
        assert_eq!(Value::parse("42"), Ok(Value::Num("42".into())));
        assert_eq!(Value::parse("-1.5e3"), Ok(Value::Num("-1.5e3".into())));
        assert_eq!(Value::parse("\"hi\""), Ok(Value::Str("hi".into())));
    }

    #[test]
    fn u64_literals_survive_exactly() {
        let big = u64::MAX;
        let v = Value::parse(&big.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(big));
        assert_eq!(Value::u64(big).to_json(), big.to_string());
    }

    #[test]
    fn parses_nested_structures_and_preserves_member_order() {
        let v = Value::parse(r#"{"b": [1, {"c": null}], "a": "x"}"#).unwrap();
        let members = v.as_obj().unwrap();
        assert_eq!(members[0].0, "b");
        assert_eq!(members[1].0, "a");
        assert_eq!(v.get("a").and_then(Value::as_str), Some("x"));
        let arr = v.get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].get("c"), Some(&Value::Null));
    }

    #[test]
    fn round_trips_compact_serialization() {
        let src = r#"{"a":1,"b":[true,null,"s\n"],"c":{"d":2.5}}"#;
        let v = Value::parse(src).unwrap();
        assert_eq!(v.to_json(), src);
        assert_eq!(Value::parse(&v.to_json()), Ok(v));
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Value::str("a\"b\\c\nd\te\u{1}");
        let back = Value::parse(&v.to_json()).unwrap();
        assert_eq!(back, v);
        let uni = Value::parse(r#""\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(uni.as_str(), Some("é😀"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "{\"a\":1} extra",
            "01x",
            "\"\\q\"",
            "[,]",
            "1.",
            "-",
            "1e",
        ] {
            assert!(Value::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Value::parse("{}"), Ok(Value::Obj(vec![])));
        assert_eq!(Value::parse("[ ]"), Ok(Value::Arr(vec![])));
        assert_eq!(Value::Obj(vec![]).to_json(), "{}");
        assert_eq!(Value::Arr(vec![]).to_json(), "[]");
    }

    #[test]
    fn f64_builder_is_parseable_and_finite_only() {
        assert_eq!(Value::f64(2.5).to_json(), "2.5");
        assert_eq!(Value::f64(f64::NAN), Value::Null);
        let v = Value::f64(0.1);
        assert_eq!(v.as_f64(), Some(0.1));
    }

    #[test]
    fn obj_builder_preserves_order_and_skips_none() {
        let v = ObjBuilder::new()
            .field("z", Value::u64(1))
            .opt_field("skipped", None)
            .opt_field("kept", Some(Value::Bool(true)))
            .field("a", Value::str("s"))
            .build();
        assert_eq!(v.to_json(), r#"{"z":1,"kept":true,"a":"s"}"#);
    }

    #[test]
    fn typed_accessors_reject_wrong_kinds() {
        let v = Value::parse(r#"{"n": 3.5, "s": "x"}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), None);
        assert_eq!(v.get("n").unwrap().as_f64(), Some(3.5));
        assert_eq!(v.get("s").unwrap().as_u64(), None);
        assert_eq!(v.get("missing"), None);
        assert_eq!(Value::Null.get("x"), None);
        assert_eq!(Value::Null.as_arr(), None);
    }
}
