//! # rcoal-scenario — declarative scenarios, sweeps, and the run cache
//!
//! The workspace's experiments used to be *code*: every figure generator
//! hand-rolled its own policy × subwarp × seed loops and re-simulated
//! configurations its siblings had already run. This crate turns a run
//! into *data*:
//!
//! * [`Scenario`] — a versioned (`rcoal-scenario/v1`), JSON
//!   round-trippable description of exactly one run: policy, workload
//!   size, seed, key, GPU-config overrides, fault plan, telemetry spec.
//!   Everything that determines the run's results, and nothing that
//!   doesn't (thread counts and host metrics stay out — results are
//!   bit-identical across them).
//! * [`SweepSpec`] — cartesian grids over a base scenario plus explicit
//!   scenario lists (`rcoal-sweep/v1`), expanding deterministically to a
//!   `Vec<Scenario>`.
//! * [`RunCache`] — an in-memory + optional on-disk memo keyed by
//!   [`Scenario::content_hash`] (FNV-1a 64 over the canonical JSON), so
//!   shared configurations across generators simulate exactly once. The
//!   hash depends only on scenario *content*: equal scenarios hash
//!   equally in every process.
//!
//! The crate sits below `rcoal-experiments` in the dependency order; the
//! experiment layer supplies the scenario → `ExperimentConfig`
//! conversion, the `ExperimentData` disk codec, and the sweep runner
//! that executes expansions through `rcoal-parallel`.
//!
//! Serialization is pure std (no serde), following the hand-written
//! JSON conventions of `rcoal-telemetry` — with one addition: the
//! [`json::Value`] model stores number *literals*, so full-range `u64`
//! seeds survive parsing exactly instead of being rounded through `f64`.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod json;

mod cache;
mod chaos;
mod journal;
mod scenario;
mod sweep;

pub use cache::{
    decode_entry, encode_entry, CacheStats, DecodeFn, EncodeFn, RunCache, StoreAudit, ENTRY_SCHEMA,
};
pub use chaos::ChaosPlan;
pub use journal::{JournalReplay, SweepJournal, JOURNAL_SCHEMA};
pub use scenario::{
    fault_plan_from_value, fault_plan_to_value, fnv1a_64, GpuOverrides, Scenario, ScenarioError,
    TelemetryOverrides, DEFAULT_SEED, SCENARIO_SCHEMA,
};
pub use sweep::{parse_spec, SweepSpec, SWEEP_SCHEMA};
