//! The declarative description of one experiment run.
//!
//! A [`Scenario`] is data, not code: everything that determines a run's
//! *results* — policy, workload size, seed, key, GPU overrides, fault
//! plan, telemetry collection — and nothing that doesn't (worker-thread
//! counts and host metrics are execution details; results are
//! bit-identical across them, so they stay out of the scenario and out
//! of its hash).
//!
//! Scenarios serialize to a versioned (`rcoal-scenario/v1`), canonical
//! JSON form: fixed field order, number literals written exactly, and
//! default-valued optional blocks omitted. The [`Scenario::content_hash`]
//! is FNV-1a 64 over that canonical form, so equal scenarios hash
//! equally in any process — the property the run cache keys on.

use crate::json::{ObjBuilder, Value};
use rcoal_core::CoalescingPolicy;
use rcoal_gpu_sim::{FaultPlan, GpuConfig, McFault, ReplyJitter, SchedulerPolicy};
use rcoal_telemetry::Severity;
use std::fmt;

/// Schema identifier written into every serialized scenario.
pub const SCENARIO_SCHEMA: &str = "rcoal-scenario/v1";

/// Default master seed, matching `ExperimentConfig::new`.
pub const DEFAULT_SEED: u64 = 0x5C0A1;

/// Error raised when a scenario (or sweep) file fails to parse or
/// validate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError {
    msg: String,
}

impl ScenarioError {
    /// Wraps a message. Public so downstream codecs (e.g. the
    /// experiment layer's run serializer) can report their own failures
    /// through the same error type.
    pub fn new(msg: impl Into<String>) -> Self {
        ScenarioError { msg: msg.into() }
    }
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for ScenarioError {}

/// Sparse overrides over the paper's [`GpuConfig`]. Only set fields are
/// serialized, applied, or hashed; an empty override block means "the
/// paper's Table I machine".
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GpuOverrides {
    /// Streaming multiprocessors.
    pub num_sms: Option<usize>,
    /// Threads per warp.
    pub warp_size: Option<usize>,
    /// Memory controllers / partitions.
    pub num_mem_controllers: Option<usize>,
    /// DRAM banks per controller.
    pub banks_per_mc: Option<usize>,
    /// Bank groups per controller.
    pub bank_groups_per_mc: Option<usize>,
    /// Partition interleave chunk in bytes.
    pub interleave_bytes: Option<u64>,
    /// DRAM row size in bytes.
    pub row_size_bytes: Option<u64>,
    /// Coalescing block size in bytes.
    pub block_size: Option<u64>,
    /// Warp scheduling policy.
    pub scheduler: Option<SchedulerPolicy>,
    /// L1 sets per SM (0 disables the L1).
    pub l1_sets: Option<usize>,
    /// L1 ways per set.
    pub l1_ways: Option<usize>,
    /// MSHR entries per SM (0 disables merging).
    pub mshr_entries: Option<usize>,
    /// Cycle-limit backstop.
    pub max_cycles: Option<u64>,
    /// Forward-progress watchdog window.
    pub watchdog_window: Option<u64>,
}

impl GpuOverrides {
    /// No overrides: the paper's configuration.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether any field is set.
    pub fn is_empty(&self) -> bool {
        *self == Self::default()
    }

    /// Applies the overrides on top of `base`.
    pub fn apply(&self, mut base: GpuConfig) -> GpuConfig {
        if let Some(v) = self.num_sms {
            base.num_sms = v;
        }
        if let Some(v) = self.warp_size {
            base.warp_size = v;
        }
        if let Some(v) = self.num_mem_controllers {
            base.num_mem_controllers = v;
        }
        if let Some(v) = self.banks_per_mc {
            base.banks_per_mc = v;
        }
        if let Some(v) = self.bank_groups_per_mc {
            base.bank_groups_per_mc = v;
        }
        if let Some(v) = self.interleave_bytes {
            base.interleave_bytes = v;
        }
        if let Some(v) = self.row_size_bytes {
            base.row_size_bytes = v;
        }
        if let Some(v) = self.block_size {
            base.block_size = v;
        }
        if let Some(v) = self.scheduler {
            base.scheduler = v;
        }
        if let Some(v) = self.l1_sets {
            base.l1_sets = v;
        }
        if let Some(v) = self.l1_ways {
            base.l1_ways = v;
        }
        if let Some(v) = self.mshr_entries {
            base.mshr_entries = v;
        }
        if let Some(v) = self.max_cycles {
            base.max_cycles = v;
        }
        if let Some(v) = self.watchdog_window {
            base.watchdog_window = v;
        }
        base
    }

    fn to_value(&self) -> Value {
        ObjBuilder::new()
            .opt_field("num_sms", self.num_sms.map(Value::usize))
            .opt_field("warp_size", self.warp_size.map(Value::usize))
            .opt_field(
                "num_mem_controllers",
                self.num_mem_controllers.map(Value::usize),
            )
            .opt_field("banks_per_mc", self.banks_per_mc.map(Value::usize))
            .opt_field(
                "bank_groups_per_mc",
                self.bank_groups_per_mc.map(Value::usize),
            )
            .opt_field("interleave_bytes", self.interleave_bytes.map(Value::u64))
            .opt_field("row_size_bytes", self.row_size_bytes.map(Value::u64))
            .opt_field("block_size", self.block_size.map(Value::u64))
            .opt_field(
                "scheduler",
                self.scheduler.map(|s| {
                    Value::str(match s {
                        SchedulerPolicy::Gto => "gto",
                        SchedulerPolicy::Lrr => "lrr",
                    })
                }),
            )
            .opt_field("l1_sets", self.l1_sets.map(Value::usize))
            .opt_field("l1_ways", self.l1_ways.map(Value::usize))
            .opt_field("mshr_entries", self.mshr_entries.map(Value::usize))
            .opt_field("max_cycles", self.max_cycles.map(Value::u64))
            .opt_field("watchdog_window", self.watchdog_window.map(Value::u64))
            .build()
    }

    fn from_value(v: &Value) -> Result<Self, ScenarioError> {
        let mut out = GpuOverrides::default();
        let members = v
            .as_obj()
            .ok_or_else(|| ScenarioError::new("gpu overrides must be an object"))?;
        for (key, value) in members {
            match key.as_str() {
                "num_sms" => out.num_sms = Some(field_usize(value, key)?),
                "warp_size" => out.warp_size = Some(field_usize(value, key)?),
                "num_mem_controllers" => out.num_mem_controllers = Some(field_usize(value, key)?),
                "banks_per_mc" => out.banks_per_mc = Some(field_usize(value, key)?),
                "bank_groups_per_mc" => out.bank_groups_per_mc = Some(field_usize(value, key)?),
                "interleave_bytes" => out.interleave_bytes = Some(field_u64(value, key)?),
                "row_size_bytes" => out.row_size_bytes = Some(field_u64(value, key)?),
                "block_size" => out.block_size = Some(field_u64(value, key)?),
                "scheduler" => {
                    out.scheduler = Some(match value.as_str() {
                        Some("gto") => SchedulerPolicy::Gto,
                        Some("lrr") => SchedulerPolicy::Lrr,
                        _ => {
                            return Err(ScenarioError::new(format!(
                                "scheduler must be \"gto\" or \"lrr\", got {}",
                                value.to_json()
                            )))
                        }
                    })
                }
                "l1_sets" => out.l1_sets = Some(field_usize(value, key)?),
                "l1_ways" => out.l1_ways = Some(field_usize(value, key)?),
                "mshr_entries" => out.mshr_entries = Some(field_usize(value, key)?),
                "max_cycles" => out.max_cycles = Some(field_u64(value, key)?),
                "watchdog_window" => out.watchdog_window = Some(field_u64(value, key)?),
                other => {
                    return Err(ScenarioError::new(format!(
                        "unknown gpu override field {other:?}"
                    )))
                }
            }
        }
        Ok(out)
    }
}

/// Telemetry collection requested by a scenario (the scenario-level
/// mirror of the experiment layer's `TelemetrySpec`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryOverrides {
    /// Events retained per launch.
    pub event_capacity: usize,
    /// Severity floor for retained events.
    pub min_severity: Severity,
}

impl TelemetryOverrides {
    fn to_value(self) -> Value {
        ObjBuilder::new()
            .field("event_capacity", Value::usize(self.event_capacity))
            .field("min_severity", Value::str(self.min_severity.as_str()))
            .build()
    }

    fn from_value(v: &Value) -> Result<Self, ScenarioError> {
        expect_fields(v, "telemetry", &["event_capacity", "min_severity"])?;
        let event_capacity = v
            .get("event_capacity")
            .and_then(Value::as_usize)
            .ok_or_else(|| ScenarioError::new("telemetry.event_capacity must be an integer"))?;
        let sev_str = v
            .get("min_severity")
            .and_then(Value::as_str)
            .ok_or_else(|| ScenarioError::new("telemetry.min_severity must be a string"))?;
        let min_severity = sev_str.parse::<Severity>().map_err(ScenarioError::new)?;
        Ok(TelemetryOverrides {
            event_capacity,
            min_severity,
        })
    }
}

/// A fully declarative, versioned description of one experiment run.
///
/// ```
/// use rcoal_scenario::Scenario;
/// use rcoal_core::CoalescingPolicy;
///
/// let s = Scenario::new(CoalescingPolicy::fss(8)?, 100, 32).with_seed(7);
/// let json = s.to_json();
/// let back = Scenario::from_json(&json)?;
/// assert_eq!(back, s);
/// assert_eq!(back.content_hash(), s.content_hash());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Coalescing policy the victim deploys.
    pub policy: CoalescingPolicy,
    /// Registered workload name; `None` means the default AES kernel.
    /// Kept optional (and elided from the canonical form when unset) so
    /// pre-registry scenario files — and their content hashes — stay
    /// valid. Registry membership is checked at execution time, not
    /// here: the scenario layer stays workload-agnostic.
    pub workload: Option<String>,
    /// Number of plaintexts (timing samples).
    pub num_plaintexts: usize,
    /// Lines per plaintext (32 = one warp).
    pub lines: usize,
    /// Master seed for plaintexts and per-launch policy randomness.
    pub seed: u64,
    /// Victim key; `None` means the workload's demo key.
    pub key: Option<[u8; 16]>,
    /// Whether the cycle simulator runs (`false` = functional only).
    pub timing: bool,
    /// Selective protection (§VII): only the vulnerable last-round loads
    /// use `policy`; all other loads keep baseline coalescing.
    pub selective: bool,
    /// Sparse GPU-configuration overrides over the paper's machine.
    pub gpu: GpuOverrides,
    /// Injected hardware faults (timing-only perturbation).
    pub faults: FaultPlan,
    /// Per-launch telemetry collection, if any.
    pub telemetry: Option<TelemetryOverrides>,
}

impl Scenario {
    /// A timing scenario on the paper's GPU with the default seed and
    /// workload key — the scenario-level mirror of
    /// `ExperimentConfig::new`.
    pub fn new(policy: CoalescingPolicy, num_plaintexts: usize, lines: usize) -> Self {
        Scenario {
            policy,
            workload: None,
            num_plaintexts,
            lines,
            seed: DEFAULT_SEED,
            key: None,
            timing: true,
            selective: false,
            gpu: GpuOverrides::none(),
            faults: FaultPlan::none(),
            telemetry: None,
        }
    }

    /// A selective-protection scenario (`ExperimentConfig::selective`).
    pub fn selective(policy: CoalescingPolicy, num_plaintexts: usize, lines: usize) -> Self {
        let mut s = Self::new(policy, num_plaintexts, lines);
        s.selective = true;
        s
    }

    /// Sets the master seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects a registered workload by name (`"aes"`, `"present80"`,
    /// `"gift64"`, `"rectangle"`, `"gather"`, …). The default name
    /// `"aes"` normalizes to `None`, so `with_workload("aes")` and an
    /// untouched scenario are the same scenario — same canonical form,
    /// same content hash.
    #[must_use]
    pub fn with_workload(mut self, workload: impl Into<String>) -> Self {
        let w = workload.into();
        self.workload = (w != "aes").then_some(w);
        self
    }

    /// Sets an explicit victim key.
    #[must_use]
    pub fn with_key(mut self, key: [u8; 16]) -> Self {
        self.key = Some(key);
        self
    }

    /// Disables the cycle simulator (access counts only).
    #[must_use]
    pub fn functional_only(mut self) -> Self {
        self.timing = false;
        self
    }

    /// Sets GPU-configuration overrides.
    #[must_use]
    pub fn with_gpu(mut self, gpu: GpuOverrides) -> Self {
        self.gpu = gpu;
        self
    }

    /// Sets the fault plan.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Requests per-launch telemetry.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: TelemetryOverrides) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// The GPU configuration this scenario runs on.
    pub fn gpu_config(&self) -> GpuConfig {
        self.gpu.apply(GpuConfig::paper())
    }

    /// Validates the scenario without running anything.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.num_plaintexts == 0 {
            return Err(ScenarioError::new("num_plaintexts must be positive"));
        }
        if self.lines == 0 {
            return Err(ScenarioError::new("lines must be positive"));
        }
        if self.telemetry.is_some() && !self.timing {
            return Err(ScenarioError::new(
                "telemetry requires a timing scenario (it instruments the cycle simulator)",
            ));
        }
        self.gpu_config().validate().map_err(ScenarioError::new)?;
        self.faults.validate().map_err(ScenarioError::new)?;
        Ok(())
    }

    /// The canonical JSON document: schema first, fixed field order,
    /// default-valued optional blocks omitted.
    pub fn to_value(&self) -> Value {
        ObjBuilder::new()
            .field("schema", Value::str(SCENARIO_SCHEMA))
            .field("policy", Value::str(self.policy.to_string()))
            .opt_field(
                "workload",
                self.workload.as_ref().map(|w| Value::str(w.clone())),
            )
            .field("num_plaintexts", Value::usize(self.num_plaintexts))
            .field("lines", Value::usize(self.lines))
            .field("seed", Value::u64(self.seed))
            .opt_field("key", self.key.map(|k| Value::str(hex_encode(&k))))
            .opt_field("timing", (!self.timing).then_some(Value::Bool(false)))
            .opt_field("selective", self.selective.then_some(Value::Bool(true)))
            .opt_field("gpu", (!self.gpu.is_empty()).then(|| self.gpu.to_value()))
            .opt_field(
                "faults",
                (self.faults != FaultPlan::none()).then(|| fault_plan_to_value(&self.faults)),
            )
            .opt_field(
                "telemetry",
                self.telemetry.map(TelemetryOverrides::to_value),
            )
            .build()
    }

    /// Canonical JSON text (`parse ∘ serialize = id`).
    pub fn to_json(&self) -> String {
        self.to_value().to_json()
    }

    /// Parses a scenario from its JSON form. Field order is free;
    /// unknown fields are rejected so spec-file typos surface instead of
    /// silently running the default.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] for syntax errors, schema mismatches,
    /// unknown or ill-typed fields.
    pub fn from_json(input: &str) -> Result<Self, ScenarioError> {
        let v = Value::parse(input).map_err(|e| ScenarioError::new(e.to_string()))?;
        Self::from_value(&v)
    }

    /// Parses a scenario from an already-parsed JSON node.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Scenario::from_json`].
    pub fn from_value(v: &Value) -> Result<Self, ScenarioError> {
        expect_fields(
            v,
            "scenario",
            &[
                "schema",
                "policy",
                "workload",
                "num_plaintexts",
                "lines",
                "seed",
                "key",
                "timing",
                "selective",
                "gpu",
                "faults",
                "telemetry",
            ],
        )?;
        let schema = v.get("schema").and_then(Value::as_str).unwrap_or_default();
        if schema != SCENARIO_SCHEMA {
            return Err(ScenarioError::new(format!(
                "unsupported scenario schema {schema:?} (expected {SCENARIO_SCHEMA:?})"
            )));
        }
        let policy_str = v
            .get("policy")
            .and_then(Value::as_str)
            .ok_or_else(|| ScenarioError::new("policy must be a string"))?;
        let policy = policy_str
            .parse::<CoalescingPolicy>()
            .map_err(|e| ScenarioError::new(e.to_string()))?;
        let workload = match v.get("workload") {
            None => None,
            Some(w) => {
                let name = w
                    .as_str()
                    .ok_or_else(|| ScenarioError::new("workload must be a string"))?;
                // Normalize the default so "workload":"aes" parses to the
                // same scenario (and hash) as a pre-registry document.
                (name != "aes").then(|| name.to_string())
            }
        };
        let num_plaintexts = v
            .get("num_plaintexts")
            .and_then(Value::as_usize)
            .ok_or_else(|| ScenarioError::new("num_plaintexts must be an integer"))?;
        let lines = v
            .get("lines")
            .and_then(Value::as_usize)
            .ok_or_else(|| ScenarioError::new("lines must be an integer"))?;
        let seed = match v.get("seed") {
            None => DEFAULT_SEED,
            Some(s) => s
                .as_u64()
                .ok_or_else(|| ScenarioError::new("seed must be a u64 integer"))?,
        };
        let key = match v.get("key") {
            None => None,
            Some(k) => {
                let hex = k
                    .as_str()
                    .ok_or_else(|| ScenarioError::new("key must be a hex string"))?;
                Some(hex_decode_key(hex)?)
            }
        };
        let timing = match v.get("timing") {
            None => true,
            Some(t) => t
                .as_bool()
                .ok_or_else(|| ScenarioError::new("timing must be a boolean"))?,
        };
        let selective = match v.get("selective") {
            None => false,
            Some(s) => s
                .as_bool()
                .ok_or_else(|| ScenarioError::new("selective must be a boolean"))?,
        };
        let gpu = match v.get("gpu") {
            None => GpuOverrides::none(),
            Some(g) => GpuOverrides::from_value(g)?,
        };
        let faults = match v.get("faults") {
            None => FaultPlan::none(),
            Some(f) => fault_plan_from_value(f)?,
        };
        let telemetry = match v.get("telemetry") {
            None => None,
            Some(t) => Some(TelemetryOverrides::from_value(t)?),
        };
        Ok(Scenario {
            policy,
            workload,
            num_plaintexts,
            lines,
            seed,
            key,
            timing,
            selective,
            gpu,
            faults,
            telemetry,
        })
    }

    /// Stable content hash: FNV-1a 64 over the canonical JSON bytes. No
    /// address- or process-dependent state enters the digest, so equal
    /// scenarios hash equally across processes and platforms.
    pub fn content_hash(&self) -> u64 {
        fnv1a_64(self.to_json().as_bytes())
    }

    /// The content hash as 16 lower-case hex digits (cache file names).
    pub fn hash_hex(&self) -> String {
        format!("{:016x}", self.content_hash())
    }
}

/// FNV-1a 64-bit over a byte string.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn field_usize(v: &Value, key: &str) -> Result<usize, ScenarioError> {
    v.as_usize()
        .ok_or_else(|| ScenarioError::new(format!("{key} must be an integer")))
}

fn field_u64(v: &Value, key: &str) -> Result<u64, ScenarioError> {
    v.as_u64()
        .ok_or_else(|| ScenarioError::new(format!("{key} must be a u64 integer")))
}

fn field_f64(v: &Value, key: &str) -> Result<f64, ScenarioError> {
    v.as_f64()
        .ok_or_else(|| ScenarioError::new(format!("{key} must be a number")))
}

/// Rejects members of object `v` outside `allowed`.
pub(crate) fn expect_fields(v: &Value, what: &str, allowed: &[&str]) -> Result<(), ScenarioError> {
    let members = v
        .as_obj()
        .ok_or_else(|| ScenarioError::new(format!("{what} must be a JSON object")))?;
    for (key, _) in members {
        if !allowed.contains(&key.as_str()) {
            return Err(ScenarioError::new(format!(
                "unknown {what} field {key:?} (allowed: {})",
                allowed.join(", ")
            )));
        }
    }
    Ok(())
}

fn hex_encode(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn hex_decode_key(hex: &str) -> Result<[u8; 16], ScenarioError> {
    if hex.len() != 32 || !hex.chars().all(|c| c.is_ascii_hexdigit()) {
        return Err(ScenarioError::new(format!(
            "key must be 32 hex digits, got {hex:?}"
        )));
    }
    let mut out = [0u8; 16];
    for (i, chunk) in hex.as_bytes().chunks(2).enumerate() {
        let s = std::str::from_utf8(chunk).map_err(|_| ScenarioError::new("key must be ascii"))?;
        out[i] = u8::from_str_radix(s, 16)
            .map_err(|_| ScenarioError::new(format!("invalid hex byte {s:?} in key")))?;
    }
    Ok(out)
}

// ------------------------------------------------------------ fault plans

fn jitter_to_value(j: ReplyJitter) -> Value {
    match j {
        ReplyJitter::None => Value::str("none"),
        ReplyJitter::Uniform { min, max } => ObjBuilder::new()
            .field(
                "uniform",
                ObjBuilder::new()
                    .field("min", Value::u64(min))
                    .field("max", Value::u64(max))
                    .build(),
            )
            .build(),
        ReplyJitter::Gaussian { sigma } => ObjBuilder::new()
            .field(
                "gaussian",
                ObjBuilder::new().field("sigma", Value::f64(sigma)).build(),
            )
            .build(),
    }
}

fn jitter_from_value(v: &Value) -> Result<ReplyJitter, ScenarioError> {
    if v.as_str() == Some("none") {
        return Ok(ReplyJitter::None);
    }
    if let Some(u) = v.get("uniform") {
        expect_fields(v, "jitter", &["uniform"])?;
        expect_fields(u, "uniform jitter", &["min", "max"])?;
        let min = field_u64(u.get("min").unwrap_or(&Value::Null), "jitter uniform min")?;
        let max = field_u64(u.get("max").unwrap_or(&Value::Null), "jitter uniform max")?;
        return Ok(ReplyJitter::Uniform { min, max });
    }
    if let Some(g) = v.get("gaussian") {
        expect_fields(v, "jitter", &["gaussian"])?;
        expect_fields(g, "gaussian jitter", &["sigma"])?;
        let sigma = field_f64(
            g.get("sigma").unwrap_or(&Value::Null),
            "jitter gaussian sigma",
        )?;
        return Ok(ReplyJitter::Gaussian { sigma });
    }
    Err(ScenarioError::new(format!(
        "jitter must be \"none\", {{\"uniform\":…}} or {{\"gaussian\":…}}, got {}",
        v.to_json()
    )))
}

fn mc_fault_to_value(mc: &McFault) -> Value {
    ObjBuilder::new()
        .field("jitter", jitter_to_value(mc.jitter))
        .field("drop_rate", Value::f64(mc.drop_rate))
        .field("max_retries", Value::u64(u64::from(mc.max_retries)))
        .build()
}

fn mc_fault_from_value(v: &Value) -> Result<McFault, ScenarioError> {
    expect_fields(v, "mc fault", &["jitter", "drop_rate", "max_retries"])?;
    let mut out = McFault::default();
    if let Some(j) = v.get("jitter") {
        out.jitter = jitter_from_value(j)?;
    }
    if let Some(d) = v.get("drop_rate") {
        out.drop_rate = field_f64(d, "drop_rate")?;
    }
    if let Some(r) = v.get("max_retries") {
        out.max_retries = r
            .as_u32()
            .ok_or_else(|| ScenarioError::new("max_retries must be a u32 integer"))?;
    }
    Ok(out)
}

/// Serializes a fault plan (full structure; the scenario layer omits the
/// whole block when the plan is [`FaultPlan::none`]).
pub fn fault_plan_to_value(plan: &FaultPlan) -> Value {
    ObjBuilder::new()
        .field("seed", Value::u64(plan.seed))
        .field("default_mc", mc_fault_to_value(&plan.default_mc))
        .field(
            "per_mc",
            Value::Arr(
                plan.per_mc
                    .iter()
                    .map(|(mc, profile)| {
                        Value::Arr(vec![Value::usize(*mc), mc_fault_to_value(profile)])
                    })
                    .collect(),
            ),
        )
        .field(
            "backpressure",
            ObjBuilder::new()
                .field("stall_rate", Value::f64(plan.backpressure.stall_rate))
                .field("stall_cycles", Value::u64(plan.backpressure.stall_cycles))
                .build(),
        )
        .build()
}

/// Parses a fault plan from its JSON form. Absent fields default to the
/// corresponding [`FaultPlan::none`] component.
///
/// # Errors
///
/// Returns a [`ScenarioError`] for unknown or ill-typed fields.
pub fn fault_plan_from_value(v: &Value) -> Result<FaultPlan, ScenarioError> {
    expect_fields(
        v,
        "fault plan",
        &["seed", "default_mc", "per_mc", "backpressure"],
    )?;
    let mut plan = FaultPlan::none();
    if let Some(s) = v.get("seed") {
        plan.seed = field_u64(s, "fault seed")?;
    }
    if let Some(mc) = v.get("default_mc") {
        plan.default_mc = mc_fault_from_value(mc)?;
    }
    if let Some(per) = v.get("per_mc") {
        let items = per
            .as_arr()
            .ok_or_else(|| ScenarioError::new("per_mc must be an array of [index, fault]"))?;
        for item in items {
            let pair = item
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| ScenarioError::new("per_mc entries must be [index, fault]"))?;
            let idx = field_usize(&pair[0], "per_mc index")?;
            plan.per_mc.push((idx, mc_fault_from_value(&pair[1])?));
        }
    }
    if let Some(bp) = v.get("backpressure") {
        expect_fields(bp, "backpressure", &["stall_rate", "stall_cycles"])?;
        if let Some(r) = bp.get("stall_rate") {
            plan.backpressure.stall_rate = field_f64(r, "stall_rate")?;
        }
        if let Some(c) = bp.get("stall_cycles") {
            plan.backpressure.stall_cycles = field_u64(c, "stall_cycles")?;
        }
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_scenarios() -> Vec<Scenario> {
        let mut out = vec![
            Scenario::new(CoalescingPolicy::Baseline, 100, 32),
            Scenario::new(CoalescingPolicy::Disabled, 10, 32).functional_only(),
            Scenario::new(CoalescingPolicy::fss(8).unwrap(), 50, 1024).with_seed(u64::MAX),
            Scenario::selective(CoalescingPolicy::rss_rts(4).unwrap(), 70, 32),
            Scenario::new(CoalescingPolicy::rss(3).unwrap(), 5, 32)
                .with_key([0xab; 16])
                .with_seed(0xdead_beef_dead_beef),
        ];
        out.push(
            Scenario::new(CoalescingPolicy::fss_rts(2).unwrap(), 20, 32).with_gpu(GpuOverrides {
                mshr_entries: Some(64),
                l1_sets: Some(16),
                ..GpuOverrides::default()
            }),
        );
        out.push(
            Scenario::new(CoalescingPolicy::Baseline, 8, 32)
                .with_faults(
                    FaultPlan::seeded(9)
                        .with_jitter(ReplyJitter::Uniform { min: 1, max: 40 })
                        .with_mc_drop(2, 0.05, 3)
                        .with_backpressure(0.001, 16),
                )
                .with_telemetry(TelemetryOverrides {
                    event_capacity: 128,
                    min_severity: Severity::Info,
                }),
        );
        out.push(
            Scenario::new(CoalescingPolicy::Baseline, 8, 32).with_faults(
                FaultPlan::seeded(3).with_jitter(ReplyJitter::Gaussian { sigma: 12.5 }),
            ),
        );
        out.push(
            Scenario::new(CoalescingPolicy::fss(8).unwrap(), 12, 32).with_workload("present80"),
        );
        out
    }

    #[test]
    fn json_round_trips_for_all_samples() {
        for s in sample_scenarios() {
            let json = s.to_json();
            let back = Scenario::from_json(&json).unwrap_or_else(|e| panic!("{json}: {e}"));
            assert_eq!(back, s, "{json}");
            assert_eq!(back.to_json(), json, "canonical form is a fixpoint");
        }
    }

    #[test]
    fn hash_is_stable_and_content_derived() {
        // Pinned digest: catches accidental canonical-form changes, and
        // documents that the hash is process-independent.
        let s = Scenario::new(CoalescingPolicy::Baseline, 100, 32);
        assert_eq!(s.content_hash(), fnv1a_64(s.to_json().as_bytes()));
        let again = Scenario::new(CoalescingPolicy::Baseline, 100, 32);
        assert_eq!(s.content_hash(), again.content_hash());
        assert_eq!(s.hash_hex().len(), 16);
        // Any field change moves the hash.
        assert_ne!(
            s.content_hash(),
            s.clone().with_seed(DEFAULT_SEED + 1).content_hash()
        );
        assert_ne!(
            s.content_hash(),
            Scenario::new(CoalescingPolicy::Baseline, 101, 32).content_hash()
        );
    }

    #[test]
    fn non_canonical_field_order_parses_to_the_same_hash() {
        let s = Scenario::new(CoalescingPolicy::fss(8).unwrap(), 50, 32).with_seed(7);
        let scrambled = format!(
            r#"{{"seed":7,"lines":32,"policy":"fss:8","num_plaintexts":50,"schema":"{SCENARIO_SCHEMA}"}}"#
        );
        let parsed = Scenario::from_json(&scrambled).unwrap();
        assert_eq!(parsed, s);
        assert_eq!(parsed.content_hash(), s.content_hash());
    }

    #[test]
    fn defaults_are_omitted_from_canonical_form() {
        let json = Scenario::new(CoalescingPolicy::Baseline, 1, 32).to_json();
        for absent in [
            "workload",
            "key",
            "timing",
            "selective",
            "gpu",
            "faults",
            "telemetry",
        ] {
            assert!(
                !json.contains(&format!("\"{absent}\"")),
                "{absent} should be omitted: {json}"
            );
        }
    }

    #[test]
    fn workload_field_round_trips_and_moves_the_hash() {
        let aes = Scenario::new(CoalescingPolicy::Baseline, 10, 32);
        let present = aes.clone().with_workload("present80");
        assert_ne!(aes.content_hash(), present.content_hash());
        let back = Scenario::from_json(&present.to_json()).unwrap();
        assert_eq!(back.workload.as_deref(), Some("present80"));
        assert_eq!(back.content_hash(), present.content_hash());
        // "aes" is the default: explicit or absent, same scenario.
        assert_eq!(aes.clone().with_workload("aes"), aes);
        let explicit = format!(
            r#"{{"schema":"{SCENARIO_SCHEMA}","policy":"baseline","workload":"aes","num_plaintexts":10,"lines":32,"seed":{DEFAULT_SEED}}}"#
        );
        assert_eq!(Scenario::from_json(&explicit).unwrap(), aes);
        // A pre-registry document (no workload field) still parses and
        // hashes exactly as before.
        assert!(!aes.to_json().contains("workload"));
        assert_eq!(Scenario::from_json(&aes.to_json()).unwrap(), aes);
        let typed = format!(
            r#"{{"schema":"{SCENARIO_SCHEMA}","policy":"baseline","workload":7,"num_plaintexts":1,"lines":32,"seed":1}}"#
        );
        assert!(Scenario::from_json(&typed).is_err(), "non-string workload");
    }

    #[test]
    fn unknown_fields_are_rejected() {
        let json = format!(
            r#"{{"schema":"{SCENARIO_SCHEMA}","policy":"baseline","num_plaintexts":1,"lines":32,"seed":1,"warp_speed":9}}"#
        );
        let err = Scenario::from_json(&json).unwrap_err().to_string();
        assert!(err.contains("warp_speed"), "{err}");
        let gpu = format!(
            r#"{{"schema":"{SCENARIO_SCHEMA}","policy":"baseline","num_plaintexts":1,"lines":32,"seed":1,"gpu":{{"cores":3}}}}"#
        );
        assert!(Scenario::from_json(&gpu).is_err());
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let json = r#"{"schema":"rcoal-scenario/v9","policy":"baseline","num_plaintexts":1,"lines":32,"seed":1}"#;
        let err = Scenario::from_json(json).unwrap_err().to_string();
        assert!(err.contains("rcoal-scenario/v9"), "{err}");
        assert!(Scenario::from_json("{}").is_err(), "missing schema");
    }

    #[test]
    fn key_hex_round_trips_and_rejects_garbage() {
        let key: [u8; 16] = *b"rcoal demo key<>";
        let s = Scenario::new(CoalescingPolicy::Baseline, 1, 32).with_key(key);
        let back = Scenario::from_json(&s.to_json()).unwrap();
        assert_eq!(back.key, Some(key));
        for bad in ["\"key\":\"abc\"", "\"key\":\"zz\""] {
            let json = format!(
                r#"{{"schema":"{SCENARIO_SCHEMA}","policy":"baseline","num_plaintexts":1,"lines":32,"seed":1,{bad}}}"#
            );
            assert!(Scenario::from_json(&json).is_err(), "{json}");
        }
    }

    #[test]
    fn full_range_seeds_survive_the_round_trip() {
        for seed in [0, u64::MAX, (1 << 53) + 1, 0x5C0A1] {
            let s = Scenario::new(CoalescingPolicy::Baseline, 1, 32).with_seed(seed);
            assert_eq!(Scenario::from_json(&s.to_json()).unwrap().seed, seed);
        }
    }

    #[test]
    fn gpu_overrides_apply_sparsely() {
        let o = GpuOverrides {
            mshr_entries: Some(64),
            num_sms: Some(2),
            ..GpuOverrides::default()
        };
        let cfg = o.apply(GpuConfig::paper());
        assert_eq!(cfg.mshr_entries, 64);
        assert_eq!(cfg.num_sms, 2);
        assert_eq!(cfg.warp_size, GpuConfig::paper().warp_size);
        assert!(GpuOverrides::none().is_empty());
        assert!(!o.is_empty());
    }

    #[test]
    fn every_gpu_override_field_round_trips() {
        let o = GpuOverrides {
            num_sms: Some(1),
            warp_size: Some(8),
            num_mem_controllers: Some(2),
            banks_per_mc: Some(4),
            bank_groups_per_mc: Some(2),
            interleave_bytes: Some(128),
            row_size_bytes: Some(1024),
            block_size: Some(32),
            scheduler: Some(SchedulerPolicy::Lrr),
            l1_sets: Some(16),
            l1_ways: Some(2),
            mshr_entries: Some(8),
            max_cycles: Some(1_000_000),
            watchdog_window: Some(0),
        };
        let s = Scenario::new(CoalescingPolicy::Baseline, 1, 32).with_gpu(o.clone());
        let back = Scenario::from_json(&s.to_json()).unwrap();
        assert_eq!(back.gpu, o);
    }

    #[test]
    fn fault_plan_round_trips_including_f64_knobs() {
        let plan = FaultPlan::seeded(0xfeed)
            .with_jitter(ReplyJitter::Gaussian { sigma: 0.1 })
            .with_mc_jitter(1, ReplyJitter::Uniform { min: 2, max: 9 })
            .with_mc_drop(4, 0.333, 2)
            .with_backpressure(1e-4, 7);
        let v = fault_plan_to_value(&plan);
        let back = fault_plan_from_value(&Value::parse(&v.to_json()).unwrap()).unwrap();
        assert_eq!(back, plan, "{}", v.to_json());
    }

    #[test]
    fn validate_checks_workload_gpu_and_faults() {
        assert!(Scenario::new(CoalescingPolicy::Baseline, 0, 32)
            .validate()
            .is_err());
        assert!(Scenario::new(CoalescingPolicy::Baseline, 1, 0)
            .validate()
            .is_err());
        let bad_gpu = Scenario::new(CoalescingPolicy::Baseline, 1, 32).with_gpu(GpuOverrides {
            block_size: Some(48),
            ..GpuOverrides::default()
        });
        assert!(bad_gpu.validate().is_err());
        let bad_faults = Scenario::new(CoalescingPolicy::Baseline, 1, 32)
            .with_faults(FaultPlan::none().with_drop(1.5, 0));
        assert!(bad_faults.validate().is_err());
        let functional_telemetry = Scenario::new(CoalescingPolicy::Baseline, 1, 32)
            .functional_only()
            .with_telemetry(TelemetryOverrides {
                event_capacity: 1,
                min_severity: Severity::Debug,
            });
        assert!(functional_telemetry.validate().is_err());
        Scenario::new(CoalescingPolicy::Baseline, 1, 32)
            .validate()
            .unwrap();
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }
}
