//! Declarative sweeps: cartesian grids and explicit scenario lists that
//! expand to a deterministic `Vec<Scenario>`.
//!
//! A [`SweepSpec`] is the data form of the hand-rolled nested loops the
//! figure generators used to carry: a `base` scenario template plus
//! per-axis value lists (policies, workload sizes, seeds). Expansion is
//! policy-major — `for policy { for num_plaintexts { for lines { for
//! seed } } }` — followed by any explicitly listed scenarios, so the
//! expanded order is a pure function of the spec.

use crate::json::{ObjBuilder, Value};
use crate::scenario::{expect_fields, Scenario, ScenarioError};
use rcoal_core::CoalescingPolicy;

/// Schema identifier written into every serialized sweep.
pub const SWEEP_SCHEMA: &str = "rcoal-sweep/v1";

/// A declarative sweep: an optional cartesian grid over a base scenario,
/// plus explicitly listed scenarios.
///
/// ```
/// use rcoal_scenario::{Scenario, SweepSpec};
/// use rcoal_core::CoalescingPolicy;
///
/// let base = Scenario::new(CoalescingPolicy::Baseline, 50, 32);
/// let sweep = SweepSpec::grid(base)
///     .with_policies(vec![CoalescingPolicy::fss(2)?, CoalescingPolicy::fss(4)?])
///     .with_seeds(vec![1, 2, 3]);
/// assert_eq!(sweep.expand()?.len(), 6);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SweepSpec {
    /// Grid template; `None` means the spec is an explicit list only.
    pub base: Option<Scenario>,
    /// Workload axis (empty = keep the base workload). The outermost
    /// expansion loop; `"aes"` entries normalize to the default like
    /// [`Scenario::with_workload`].
    pub workloads: Vec<String>,
    /// Policy axis (empty = keep the base policy).
    pub policies: Vec<CoalescingPolicy>,
    /// Workload-size axis (empty = keep the base size).
    pub num_plaintexts: Vec<usize>,
    /// Lines-per-plaintext axis (empty = keep the base).
    pub lines: Vec<usize>,
    /// Seed axis (empty = keep the base seed).
    pub seeds: Vec<u64>,
    /// Scenarios appended verbatim after the grid.
    pub scenarios: Vec<Scenario>,
}

impl SweepSpec {
    /// A grid sweep over `base`.
    pub fn grid(base: Scenario) -> Self {
        SweepSpec {
            base: Some(base),
            ..Self::default()
        }
    }

    /// An explicit-list sweep with no grid.
    pub fn list(scenarios: Vec<Scenario>) -> Self {
        SweepSpec {
            scenarios,
            ..Self::default()
        }
    }

    /// Sets the workload axis.
    #[must_use]
    pub fn with_workloads(mut self, workloads: Vec<String>) -> Self {
        self.workloads = workloads;
        self
    }

    /// Sets the policy axis.
    #[must_use]
    pub fn with_policies(mut self, policies: Vec<CoalescingPolicy>) -> Self {
        self.policies = policies;
        self
    }

    /// Sets the workload-size axis.
    #[must_use]
    pub fn with_num_plaintexts(mut self, num_plaintexts: Vec<usize>) -> Self {
        self.num_plaintexts = num_plaintexts;
        self
    }

    /// Sets the lines-per-plaintext axis.
    #[must_use]
    pub fn with_lines(mut self, lines: Vec<usize>) -> Self {
        self.lines = lines;
        self
    }

    /// Sets the seed axis.
    #[must_use]
    pub fn with_seeds(mut self, seeds: Vec<u64>) -> Self {
        self.seeds = seeds;
        self
    }

    /// Appends one explicit scenario after the grid.
    #[must_use]
    pub fn push(mut self, scenario: Scenario) -> Self {
        self.scenarios.push(scenario);
        self
    }

    /// Expands the spec into its scenario list (grid first, policy-major;
    /// then explicit scenarios), validating every expanded scenario.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] for an empty spec, grid axes without a
    /// base, or any invalid expanded scenario.
    pub fn expand(&self) -> Result<Vec<Scenario>, ScenarioError> {
        let has_axes = !(self.workloads.is_empty()
            && self.policies.is_empty()
            && self.num_plaintexts.is_empty()
            && self.lines.is_empty()
            && self.seeds.is_empty());
        if self.base.is_none() && has_axes {
            return Err(ScenarioError::new(
                "sweep axes (workloads/policies/num_plaintexts/lines/seeds) require a base \
                 scenario",
            ));
        }
        let mut out = Vec::new();
        if let Some(base) = &self.base {
            let workloads: Vec<Option<String>> = if self.workloads.is_empty() {
                vec![base.workload.clone()]
            } else {
                self.workloads
                    .iter()
                    .map(|w| (w != "aes").then(|| w.clone()))
                    .collect()
            };
            let policies: Vec<CoalescingPolicy> = if self.policies.is_empty() {
                vec![base.policy]
            } else {
                self.policies.clone()
            };
            let sizes = non_empty_or(&self.num_plaintexts, base.num_plaintexts);
            let lines = non_empty_or(&self.lines, base.lines);
            let seeds = non_empty_or(&self.seeds, base.seed);
            for workload in &workloads {
                for &policy in &policies {
                    for &num_plaintexts in &sizes {
                        for &line_count in &lines {
                            for &seed in &seeds {
                                let mut s = base.clone();
                                s.workload = workload.clone();
                                s.policy = policy;
                                s.num_plaintexts = num_plaintexts;
                                s.lines = line_count;
                                s.seed = seed;
                                out.push(s);
                            }
                        }
                    }
                }
            }
        }
        out.extend(self.scenarios.iter().cloned());
        if out.is_empty() {
            return Err(ScenarioError::new(
                "sweep expands to no scenarios (provide a base or explicit scenarios)",
            ));
        }
        for (i, s) in out.iter().enumerate() {
            s.validate()
                .map_err(|e| ScenarioError::new(format!("scenario {i}: {e}")))?;
        }
        Ok(out)
    }

    /// Serializes the sweep (schema first; empty axes omitted).
    pub fn to_value(&self) -> Value {
        ObjBuilder::new()
            .field("schema", Value::str(SWEEP_SCHEMA))
            .opt_field("base", self.base.as_ref().map(Scenario::to_value))
            .opt_field(
                "workloads",
                non_empty(&self.workloads, |w| Value::str(w.clone())),
            )
            .opt_field(
                "policies",
                non_empty(&self.policies, |p| Value::str(p.to_string())),
            )
            .opt_field(
                "num_plaintexts",
                non_empty(&self.num_plaintexts, |&n| Value::usize(n)),
            )
            .opt_field("lines", non_empty(&self.lines, |&n| Value::usize(n)))
            .opt_field("seeds", non_empty(&self.seeds, |&s| Value::u64(s)))
            .opt_field("scenarios", non_empty(&self.scenarios, Scenario::to_value))
            .build()
    }

    /// Canonical JSON text.
    pub fn to_json(&self) -> String {
        self.to_value().to_json()
    }

    /// Parses a sweep from its JSON form (field order free, unknown
    /// fields rejected).
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] for syntax errors, schema mismatches,
    /// unknown or ill-typed fields.
    pub fn from_json(input: &str) -> Result<Self, ScenarioError> {
        let v = Value::parse(input).map_err(|e| ScenarioError::new(e.to_string()))?;
        Self::from_value(&v)
    }

    /// Parses a sweep from an already-parsed JSON node.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SweepSpec::from_json`].
    pub fn from_value(v: &Value) -> Result<Self, ScenarioError> {
        expect_fields(
            v,
            "sweep",
            &[
                "schema",
                "base",
                "workloads",
                "policies",
                "num_plaintexts",
                "lines",
                "seeds",
                "scenarios",
            ],
        )?;
        let schema = v.get("schema").and_then(Value::as_str).unwrap_or_default();
        if schema != SWEEP_SCHEMA {
            return Err(ScenarioError::new(format!(
                "unsupported sweep schema {schema:?} (expected {SWEEP_SCHEMA:?})"
            )));
        }
        let base = v.get("base").map(Scenario::from_value).transpose()?;
        let workloads = parse_axis(v, "workloads", |item| {
            item.as_str()
                .map(str::to_string)
                .ok_or_else(|| ScenarioError::new("workloads entries must be strings"))
        })?;
        let policies = parse_axis(v, "policies", |item| {
            item.as_str()
                .ok_or_else(|| ScenarioError::new("policies entries must be strings"))?
                .parse::<CoalescingPolicy>()
                .map_err(|e| ScenarioError::new(e.to_string()))
        })?;
        let num_plaintexts = parse_axis(v, "num_plaintexts", |item| {
            item.as_usize()
                .ok_or_else(|| ScenarioError::new("num_plaintexts entries must be integers"))
        })?;
        let lines = parse_axis(v, "lines", |item| {
            item.as_usize()
                .ok_or_else(|| ScenarioError::new("lines entries must be integers"))
        })?;
        let seeds = parse_axis(v, "seeds", |item| {
            item.as_u64()
                .ok_or_else(|| ScenarioError::new("seeds entries must be u64 integers"))
        })?;
        let scenarios = parse_axis(v, "scenarios", Scenario::from_value)?;
        Ok(SweepSpec {
            base,
            workloads,
            policies,
            num_plaintexts,
            lines,
            seeds,
            scenarios,
        })
    }
}

/// Parses a spec file that is either a single `rcoal-scenario/v1`
/// document (wrapped into a one-element list sweep) or a full
/// `rcoal-sweep/v1` document.
///
/// # Errors
///
/// Returns a [`ScenarioError`] naming the unrecognized schema, or any
/// error of the underlying parser.
pub fn parse_spec(input: &str) -> Result<SweepSpec, ScenarioError> {
    let v = Value::parse(input).map_err(|e| ScenarioError::new(e.to_string()))?;
    match v.get("schema").and_then(Value::as_str) {
        Some(crate::scenario::SCENARIO_SCHEMA) => {
            Ok(SweepSpec::list(vec![Scenario::from_value(&v)?]))
        }
        Some(SWEEP_SCHEMA) => SweepSpec::from_value(&v),
        other => Err(ScenarioError::new(format!(
            "spec schema {:?} is neither {:?} nor {:?}",
            other.unwrap_or("<missing>"),
            crate::scenario::SCENARIO_SCHEMA,
            SWEEP_SCHEMA
        ))),
    }
}

fn non_empty_or<T: Copy>(axis: &[T], fallback: T) -> Vec<T> {
    if axis.is_empty() {
        vec![fallback]
    } else {
        axis.to_vec()
    }
}

fn non_empty<T>(items: &[T], f: impl Fn(&T) -> Value) -> Option<Value> {
    if items.is_empty() {
        None
    } else {
        Some(Value::Arr(items.iter().map(f).collect()))
    }
}

fn parse_axis<T>(
    v: &Value,
    key: &str,
    f: impl Fn(&Value) -> Result<T, ScenarioError>,
) -> Result<Vec<T>, ScenarioError> {
    match v.get(key) {
        None => Ok(Vec::new()),
        Some(axis) => axis
            .as_arr()
            .ok_or_else(|| ScenarioError::new(format!("{key} must be an array")))?
            .iter()
            .map(&f)
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Scenario {
        Scenario::new(CoalescingPolicy::Baseline, 50, 32)
    }

    #[test]
    fn grid_expansion_is_policy_major_cartesian() {
        let sweep = SweepSpec::grid(base())
            .with_policies(vec![
                CoalescingPolicy::fss(2).unwrap(),
                CoalescingPolicy::fss(4).unwrap(),
            ])
            .with_seeds(vec![1, 2, 3]);
        let scenarios = sweep.expand().unwrap();
        assert_eq!(scenarios.len(), 6);
        assert_eq!(scenarios[0].policy, CoalescingPolicy::fss(2).unwrap());
        assert_eq!(scenarios[0].seed, 1);
        assert_eq!(scenarios[2].seed, 3);
        assert_eq!(scenarios[3].policy, CoalescingPolicy::fss(4).unwrap());
        // Unswept axes keep the base values.
        assert!(scenarios.iter().all(|s| s.num_plaintexts == 50));
        assert!(scenarios.iter().all(|s| s.lines == 32));
    }

    #[test]
    fn empty_axes_default_to_the_base_and_explicit_list_appends() {
        let extra = Scenario::new(CoalescingPolicy::Disabled, 7, 32);
        let sweep = SweepSpec::grid(base()).push(extra.clone());
        let scenarios = sweep.expand().unwrap();
        assert_eq!(scenarios.len(), 2);
        assert_eq!(scenarios[0], base());
        assert_eq!(scenarios[1], extra);
    }

    #[test]
    fn list_only_sweeps_expand_verbatim() {
        let list = vec![base(), base().with_seed(9)];
        let scenarios = SweepSpec::list(list.clone()).expand().unwrap();
        assert_eq!(scenarios, list);
    }

    #[test]
    fn expansion_rejects_degenerate_specs() {
        assert!(SweepSpec::default().expand().is_err(), "empty spec");
        let axes_without_base = SweepSpec::list(vec![base()]).with_seeds(vec![1]);
        assert!(axes_without_base.expand().is_err());
        let invalid = SweepSpec::list(vec![Scenario::new(CoalescingPolicy::Baseline, 0, 32)]);
        let err = invalid.expand().unwrap_err().to_string();
        assert!(err.contains("scenario 0"), "{err}");
    }

    #[test]
    fn workload_axis_expands_outermost_and_normalizes_aes() {
        let sweep = SweepSpec::grid(base())
            .with_workloads(vec!["aes".to_string(), "present80".to_string()])
            .with_seeds(vec![1, 2]);
        let scenarios = sweep.expand().unwrap();
        assert_eq!(scenarios.len(), 4);
        assert_eq!(scenarios[0].workload, None, "aes normalizes to default");
        assert_eq!(scenarios[1].workload, None);
        assert_eq!(scenarios[2].workload.as_deref(), Some("present80"));
        assert_eq!(scenarios[3].workload.as_deref(), Some("present80"));
        assert_eq!(scenarios[0], base().with_seed(1), "aes rows match legacy");
        // Axis without a base is still rejected.
        let no_base = SweepSpec::list(vec![base()]).with_workloads(vec!["gift64".to_string()]);
        assert!(no_base.expand().is_err());
    }

    #[test]
    fn json_round_trips() {
        let sweep = SweepSpec::grid(base().with_seed(0xfeed))
            .with_workloads(vec!["gather".to_string(), "rectangle".to_string()])
            .with_policies(vec![
                CoalescingPolicy::rss(4).unwrap(),
                CoalescingPolicy::Disabled,
            ])
            .with_num_plaintexts(vec![10, 20])
            .with_lines(vec![32, 1024])
            .with_seeds(vec![u64::MAX])
            .push(Scenario::selective(
                CoalescingPolicy::rss_rts(8).unwrap(),
                5,
                32,
            ));
        let json = sweep.to_json();
        let back = SweepSpec::from_json(&json).unwrap();
        assert_eq!(back, sweep);
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn parse_spec_accepts_both_schemas() {
        let lone = base().to_json();
        let wrapped = parse_spec(&lone).unwrap();
        assert_eq!(wrapped.expand().unwrap(), vec![base()]);
        let sweep_json = SweepSpec::grid(base()).to_json();
        assert_eq!(parse_spec(&sweep_json).unwrap(), SweepSpec::grid(base()));
        let err = parse_spec(r#"{"schema":"rcoal-metrics/v1"}"#)
            .unwrap_err()
            .to_string();
        assert!(err.contains("rcoal-metrics/v1"), "{err}");
    }

    #[test]
    fn unknown_sweep_fields_are_rejected() {
        let json = format!(r#"{{"schema":"{SWEEP_SCHEMA}","repeat":3}}"#);
        let err = SweepSpec::from_json(&json).unwrap_err().to_string();
        assert!(err.contains("repeat"), "{err}");
    }

    #[test]
    fn expanded_scenarios_hash_distinctly() {
        let sweep = SweepSpec::grid(base()).with_seeds(vec![1, 2, 3, 4]);
        let scenarios = sweep.expand().unwrap();
        let mut hashes: Vec<u64> = scenarios.iter().map(Scenario::content_hash).collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), scenarios.len());
    }
}
