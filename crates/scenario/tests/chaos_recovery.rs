//! Host-level chaos suite for the run store and sweep journal.
//!
//! Every test follows the same contract the sweep runner relies on:
//! under any injected fault — failed writes, corrupted payloads, torn
//! writes, crash-truncated journals — the store either *recovers* (the
//! value still serves, from memory or a clean re-read) or *quarantines*
//! (the bad entry moves aside and the lookup misses cleanly), and
//! completed work recorded before a crash is never lost or silently
//! altered. The fault schedules are seeded, so a failure here is
//! reproducible bit-for-bit.

use rcoal_core::CoalescingPolicy;
use rcoal_scenario::{
    encode_entry, ChaosPlan, DecodeFn, EncodeFn, RunCache, Scenario, ScenarioError, SweepJournal,
};
use std::path::PathBuf;

fn scenario(seed: u64) -> Scenario {
    Scenario::new(CoalescingPolicy::Baseline, 4, 32).with_seed(seed)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rcoal-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn codec() -> (EncodeFn<u64>, DecodeFn<u64>) {
    let encode: EncodeFn<u64> = |v| Some(v.to_string());
    let decode: DecodeFn<u64> = |s| {
        s.trim()
            .parse()
            .map_err(|e| ScenarioError::new(format!("{e}")))
    };
    (encode, decode)
}

/// The central chaos invariant: a storm of every write-path fault class
/// at once, and afterwards each value either serves *correctly* or
/// misses cleanly after quarantine — never a wrong value, never an
/// uncounted loss.
#[test]
fn fault_storm_recovers_or_quarantines_every_entry() {
    let dir = temp_dir("storm");
    let (encode, decode) = codec();
    let plan = ChaosPlan::seeded(0xc4a05)
        .with_io_failures(5)
        .with_corruption(7)
        .with_torn_writes(6);
    let writer = RunCache::with_disk(&dir, encode, decode)
        .unwrap()
        .with_chaos(plan);

    const N: u64 = 60;
    for i in 0..N {
        writer.insert(&scenario(i), i * 1000 + 7);
    }
    let wstats = writer.stats();
    assert_eq!(
        wstats.disk_stores + wstats.write_failures,
        N,
        "every write accounted: stored or counted-failed"
    );
    assert!(
        wstats.write_failures > 0,
        "io-failure class must have fired"
    );
    // Whatever the disk did, memory still serves everything.
    for i in 0..N {
        assert_eq!(writer.get(&scenario(i)), Some(i * 1000 + 7));
    }
    drop(writer);

    // A fresh process reads the battlefield with no chaos of its own.
    let reader = RunCache::with_disk(&dir, encode, decode).unwrap();
    let mut recovered = 0u64;
    let mut missed = 0u64;
    for i in 0..N {
        match reader.get(&scenario(i)) {
            Some(v) => {
                assert_eq!(v, i * 1000 + 7, "a served value is never wrong");
                recovered += 1;
            }
            None => missed += 1,
        }
    }
    let rstats = reader.stats();
    assert_eq!(recovered + missed, N);
    assert!(recovered > 0, "clean writes must survive");
    assert!(
        rstats.quarantined > 0,
        "corruption/torn classes must have fired and been quarantined"
    );
    // Every miss is explained: the entry was never stored (io failure)
    // or was quarantined on read. Nothing vanished without a counter.
    assert_eq!(missed, wstats.write_failures + rstats.quarantined);
    // Quarantine left evidence behind.
    let sidecars = std::fs::read_dir(&dir)
        .unwrap()
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .path()
                .to_string_lossy()
                .ends_with(".corrupt")
        })
        .count() as u64;
    assert_eq!(sidecars, rstats.quarantined);
    // After the quarantines, the store audits clean.
    let audit = reader.verify().unwrap();
    assert!(audit.is_clean(), "{audit:?}");
    assert_eq!(audit.entries, recovered);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Repair quarantines exactly the corrupt entries and leaves clean ones
/// serving the same bytes as before.
#[test]
fn repair_is_surgical() {
    let dir = temp_dir("surgical");
    let (encode, decode) = codec();
    let cache = RunCache::with_disk(&dir, encode, decode).unwrap();
    for i in 0..8 {
        cache.insert(&scenario(i), i + 100);
    }
    // Vandalize three entries three different ways.
    let tear = dir.join(format!("{}.json", scenario(1).hash_hex()));
    let full = std::fs::read_to_string(&tear).unwrap();
    std::fs::write(&tear, &full[..full.len() / 2]).unwrap();
    let rot = dir.join(format!("{}.json", scenario(3).hash_hex()));
    let mut bytes = std::fs::read(&rot).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff;
    std::fs::write(&rot, &bytes).unwrap();
    let garbage = dir.join(format!("{}.json", scenario(5).hash_hex()));
    std::fs::write(&garbage, "}{ total nonsense").unwrap();

    let audit = cache.repair().unwrap();
    assert_eq!(
        (audit.entries, audit.ok, audit.corrupt, audit.repaired),
        (8, 5, 3, 3)
    );

    // Untouched entries still serve identically from a fresh cache.
    let reader = RunCache::with_disk(&dir, encode, decode).unwrap();
    for i in [0u64, 2, 4, 6, 7] {
        assert_eq!(reader.get(&scenario(i)), Some(i + 100));
    }
    for i in [1u64, 3, 5] {
        assert_eq!(reader.get(&scenario(i)), None);
    }
    assert_eq!(reader.stats().quarantined, 0, "repair already moved them");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A simulated kill-and-resume sweep over the scenario-layer primitives
/// alone: process 1 completes part of the work (journaling as it goes)
/// and "crashes" mid-journal-write; process 2 replays the journal,
/// serves the completed work from the store bit-identically, and only
/// redoes the remainder.
#[test]
fn killed_sweep_resumes_without_losing_completed_work() {
    let dir = temp_dir("resume");
    std::fs::create_dir_all(&dir).unwrap();
    let journal_path = dir.join("journal.jsonl");
    let (encode, decode) = codec();
    const TOTAL: u64 = 10;
    const CRASH_AT: u64 = 6;

    // Process 1: complete CRASH_AT scenarios, then die mid-append.
    {
        let cache = RunCache::with_disk(&dir, encode, decode).unwrap();
        let journal = SweepJournal::open(&journal_path).unwrap();
        for i in 0..CRASH_AT {
            cache.insert(&scenario(i), i * 11);
            journal
                .record_completed(scenario(i).content_hash())
                .unwrap();
        }
        journal.sync().unwrap();
    }
    // The crash tears the in-flight record for scenario CRASH_AT (the
    // cache entry for it never completed either — write-then-rename
    // means no torn *.json appears, so we only tear the journal).
    let mut text = std::fs::read_to_string(&journal_path).unwrap();
    text.push_str("{\"schema\":\"rcoal-journal/v1\",\"event\":\"comple");
    std::fs::write(&journal_path, &text).unwrap();

    // Process 2: resume.
    let cache = RunCache::with_disk(&dir, encode, decode).unwrap();
    let journal = SweepJournal::open(&journal_path).unwrap();
    let replay = journal.replay().clone();
    assert!(replay.torn_tail, "the crash left a torn record");
    assert_eq!(replay.completed.len() as u64, CRASH_AT);
    let done = replay.completed_set();
    let mut served = 0u64;
    let mut redone = 0u64;
    for i in 0..TOTAL {
        let s = scenario(i);
        if done.contains(&s.content_hash()) {
            // Journaled work must be servable — and bit-identical.
            assert_eq!(cache.get(&s), Some(i * 11), "journaled run lost");
            served += 1;
        } else {
            cache.insert(&s, i * 11);
            journal.record_completed(s.content_hash()).unwrap();
            redone += 1;
        }
    }
    journal.sync().unwrap();
    assert_eq!((served, redone), (CRASH_AT, TOTAL - CRASH_AT));
    drop(journal);

    // Process 3 sees one clean, complete journal.
    let third = SweepJournal::open(&journal_path).unwrap();
    assert_eq!(third.replay().completed.len() as u64, TOTAL);
    assert!(!third.replay().torn_tail);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Concurrent writers under io-failure chaos: the shared cache stays
/// consistent and the books still balance.
#[test]
fn concurrent_chaos_writes_keep_consistent_accounting() {
    let dir = temp_dir("concurrent");
    let (encode, decode) = codec();
    let cache = std::sync::Arc::new(
        RunCache::with_disk(&dir, encode, decode)
            .unwrap()
            .with_chaos(ChaosPlan::seeded(99).with_io_failures(3)),
    );
    let handles: Vec<_> = (0u64..4)
        .map(|t| {
            let cache = std::sync::Arc::clone(&cache);
            std::thread::spawn(move || {
                for i in 0..16 {
                    let s = scenario(t * 100 + i);
                    cache.insert(&s, t * 100 + i);
                    assert_eq!(cache.get(&s), Some(t * 100 + i), "memory always serves");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let stats = cache.stats();
    assert_eq!(stats.disk_stores + stats.write_failures, 64);
    assert!(stats.write_failures > 0);
    assert_eq!(cache.len(), 64);
    // Everything on disk is a clean envelope (failed writes left
    // nothing behind, not torn files).
    assert!(cache.verify().unwrap().is_clean());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A mid-write crash between tmp-write and rename leaves a stale `.tmp`
/// file; it must shadow nothing and audits must ignore it.
#[test]
fn leftover_tmp_files_are_harmless() {
    let dir = temp_dir("tmpfile");
    let (encode, decode) = codec();
    let cache = RunCache::with_disk(&dir, encode, decode).unwrap();
    let s = scenario(0);
    cache.insert(&s, 5);
    // A crashed sibling process died between write and rename.
    std::fs::write(
        dir.join(format!("{}.12345.9.tmp", scenario(1).hash_hex())),
        encode_entry(scenario(1).content_hash(), "999"),
    )
    .unwrap();
    let reader = RunCache::with_disk(&dir, encode, decode).unwrap();
    assert_eq!(reader.get(&s), Some(5));
    assert_eq!(reader.get(&scenario(1)), None, "tmp files are invisible");
    let audit = reader.verify().unwrap();
    assert_eq!(audit.entries, 1, "audits skip non-entry files");
    assert!(audit.is_clean());
    std::fs::remove_dir_all(&dir).unwrap();
}
