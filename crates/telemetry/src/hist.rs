//! Fixed-bucket log2 histograms for single-threaded hot paths.

/// Number of buckets in a [`Hist64`]: bucket 0 holds the value `0`,
/// bucket `i >= 1` holds values whose bit length is `i`, i.e. the range
/// `[2^(i-1), 2^i - 1]`. Bucket 64 therefore ends at `u64::MAX`.
pub const NUM_BUCKETS: usize = 65;

/// The bucket index a value lands in: `0` for zero, otherwise the
/// value's bit length (1..=64).
#[inline]
pub fn log2_bucket(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// A plain (non-atomic) log2-bucket histogram.
///
/// Designed for the simulator's cycle loop: recording is two array ops
/// and a handful of integer updates, no allocation, no synchronization.
/// Use [`AtomicHist`](crate::AtomicHist) where concurrent writers need
/// one histogram; inside a single simulated launch this type is the
/// right tool, and launches merge their histograms afterwards in launch
/// order (keeping aggregates deterministic).
///
/// The log2 buckets suit the quantities the RCoal paper profiles:
/// memory latency (tens to thousands of cycles), FR-FCFS queue depth,
/// and coalesced-accesses-per-subwarp (1..=32) all span orders of
/// magnitude where relative resolution matters more than absolute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist64 {
    buckets: [u64; NUM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Hist64 {
    fn default() -> Self {
        Hist64 {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Hist64 {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[log2_bucket(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records `n` observations of the same value.
    #[inline]
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[log2_bucket(value)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating at `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean observation, `0.0` if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile of the recorded distribution, `None` if empty.
    ///
    /// `q` is clamped to `[0, 1]`. The estimate walks the log2 buckets
    /// to the one holding the rank-`ceil(q * count)` observation and
    /// interpolates linearly inside it, then clamps to the exact
    /// observed `[min, max]` so single-bucket histograms report the
    /// true extremes rather than bucket bounds. Resolution is therefore
    /// the bucket width (a factor of two), which matches how the
    /// histogram is recorded; the result is deterministic and
    /// merge-order independent.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based; q = 0 maps to rank 1.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let (lo, hi) = Self::bucket_bounds(i);
                // 1-based position of the target inside this bucket, so
                // the bucket's last-ranked observation reaches `hi` (and
                // the overall maximum survives the clamp below).
                let into = rank - seen;
                let width = (hi - lo) as u128;
                let offset = (width * u128::from(into) / u128::from(n)) as u64;
                return Some((lo + offset).clamp(self.min, self.max));
            }
            seen += n;
        }
        // Unreachable: counts always sum to `self.count`.
        Some(self.max)
    }

    /// Median observation (50th percentile), `None` if empty.
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 95th-percentile observation, `None` if empty.
    pub fn p95(&self) -> Option<u64> {
        self.quantile(0.95)
    }

    /// 99th-percentile observation, `None` if empty.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// Count in bucket `i` (see [`NUM_BUCKETS`] for the bucket layout).
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets.get(i).copied().unwrap_or(0)
    }

    /// Inclusive value range `(lo, hi)` covered by bucket `i`.
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        match i {
            0 => (0, 0),
            1..=63 => (1u64 << (i - 1), (1u64 << i) - 1),
            _ => (1u64 << 63, u64::MAX),
        }
    }

    /// Iterates `(bucket_lo, bucket_hi, count)` over non-empty buckets.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = Self::bucket_bounds(i);
                (lo, hi, c)
            })
    }

    /// Folds another histogram into this one (used to aggregate
    /// per-launch profiles in launch order).
    pub fn merge(&mut self, other: &Hist64) {
        if other.count == 0 {
            return;
        }
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Serializes to a stable JSON object: count, sum, min/max/mean and
    /// the non-empty buckets as `{"lo": .., "hi": .., "n": ..}` entries
    /// in ascending bucket order.
    pub fn to_json(&self) -> String {
        let mut buckets = String::new();
        for (i, (lo, hi, n)) in self.nonzero_buckets().enumerate() {
            if i > 0 {
                buckets.push(',');
            }
            buckets.push_str(&format!("{{\"lo\":{lo},\"hi\":{hi},\"n\":{n}}}"));
        }
        format!(
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{:.3},\"buckets\":[{}]}}",
            self.count,
            self.sum,
            self.min().unwrap_or(0),
            self.max().unwrap_or(0),
            self.mean(),
            buckets
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_lands_in_bucket_zero() {
        assert_eq!(log2_bucket(0), 0);
        let mut h = Hist64::new();
        h.record(0);
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(0));
    }

    #[test]
    fn u64_max_lands_in_the_last_bucket() {
        assert_eq!(log2_bucket(u64::MAX), 64);
        let mut h = Hist64::new();
        h.record(u64::MAX);
        assert_eq!(h.bucket(64), 1);
        assert_eq!(h.max(), Some(u64::MAX));
        // Saturating sum: a second MAX must not wrap.
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
    }

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        // 2^k - 1 and 2^k straddle a bucket boundary for every k.
        for k in 1..64u32 {
            let below = (1u64 << k) - 1;
            let at = 1u64 << k;
            assert_eq!(log2_bucket(below), k as usize, "2^{k} - 1");
            assert_eq!(log2_bucket(at), k as usize + 1, "2^{k}");
        }
        assert_eq!(log2_bucket(1), 1);
        assert_eq!(log2_bucket(2), 2);
        assert_eq!(log2_bucket(3), 2);
        assert_eq!(log2_bucket(4), 3);
    }

    #[test]
    fn bucket_bounds_cover_the_domain_without_gaps() {
        let mut next = 0u64;
        for i in 0..NUM_BUCKETS {
            let (lo, hi) = Hist64::bucket_bounds(i);
            assert_eq!(
                lo,
                next,
                "bucket {i} starts where {} ended",
                i.wrapping_sub(1)
            );
            assert!(hi >= lo);
            next = hi.wrapping_add(1);
        }
        assert_eq!(next, 0, "last bucket ends at u64::MAX");
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = Hist64::new();
        let mut b = Hist64::new();
        for _ in 0..7 {
            a.record(100);
        }
        b.record_n(100, 7);
        b.record_n(5, 0); // no-op
        assert_eq!(a, b);
    }

    #[test]
    fn merge_accumulates_everything() {
        let mut a = Hist64::new();
        a.record(1);
        a.record(1000);
        let mut b = Hist64::new();
        b.record(0);
        b.record(u64::MAX);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.min(), Some(0));
        assert_eq!(a.max(), Some(u64::MAX));
        let empty = Hist64::new();
        let before = a.clone();
        a.merge(&empty);
        assert_eq!(a, before, "merging an empty histogram changes nothing");
    }

    #[test]
    fn mean_and_empty_behavior() {
        let h = Hist64::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        let mut h = Hist64::new();
        h.record(10);
        h.record(20);
        assert!((h.mean() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_on_empty_and_singleton() {
        let h = Hist64::new();
        assert_eq!(h.p50(), None);
        assert_eq!(h.quantile(0.0), None);
        let mut h = Hist64::new();
        h.record(42);
        // A single observation is every quantile, exactly — the clamp
        // to [min, max] beats bucket-bound interpolation here.
        assert_eq!(h.quantile(0.0), Some(42));
        assert_eq!(h.p50(), Some(42));
        assert_eq!(h.p99(), Some(42));
        assert_eq!(h.quantile(1.0), Some(42));
    }

    #[test]
    fn quantiles_walk_buckets_in_rank_order() {
        let mut h = Hist64::new();
        // 90 observations of 4 (bucket [4,7]), 9 of 100 (bucket
        // [64,127]), 1 of 5000 (bucket [4096,8191]).
        h.record_n(4, 90);
        h.record_n(100, 9);
        h.record_n(5000, 1);
        let p50 = h.p50().unwrap();
        assert!((4..=7).contains(&p50), "p50 in the dominant bucket: {p50}");
        let p95 = h.p95().unwrap();
        assert!((64..=127).contains(&p95), "p95 in the tail bucket: {p95}");
        // p99 ranks observation 99 of 100 — still the 100s bucket; the
        // single 5000 is only reached at p100.
        let p99 = h.p99().unwrap();
        assert!((64..=127).contains(&p99), "p99: {p99}");
        assert_eq!(h.quantile(1.0), Some(5000), "max is clamped exactly");
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let mut h = Hist64::new();
        for v in [0u64, 1, 3, 9, 17, 80, 81, 300, 7000, 65000] {
            h.record(v);
        }
        let mut last = 0u64;
        for i in 0..=20 {
            let q = f64::from(i) / 20.0;
            let v = h.quantile(q).unwrap();
            assert!(v >= last, "quantile({q}) = {v} < {last}");
            assert!(v <= h.max().unwrap());
            last = v;
        }
        assert_eq!(h.quantile(-0.5), h.quantile(0.0), "q clamps low");
        assert_eq!(h.quantile(1.5), h.quantile(1.0), "q clamps high");
        assert_eq!(h.quantile(1.0), Some(65000));
    }

    #[test]
    fn json_lists_nonzero_buckets_in_order() {
        let mut h = Hist64::new();
        h.record(0);
        h.record(3);
        h.record(3);
        let j = h.to_json();
        assert!(j.contains("\"count\":3"), "{j}");
        assert!(j.contains("{\"lo\":0,\"hi\":0,\"n\":1}"), "{j}");
        assert!(j.contains("{\"lo\":2,\"hi\":3,\"n\":2}"), "{j}");
    }
}
