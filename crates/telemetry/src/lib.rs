//! # rcoal-telemetry — observability primitives for the RCoal workspace
//!
//! The paper's whole argument is about *where* timing signal comes from
//! (coalesced-access counts, DRAM row locality, interconnect
//! serialization), so the pipeline needs a profiling layer that can show
//! per-component behavior without perturbing it. This crate provides the
//! pure-`std` building blocks; the simulator, experiment harness, attack
//! suite, and CLI assemble them:
//!
//! * [`Hist64`] — a plain (non-atomic) fixed-bucket log2 histogram for
//!   single-threaded hot paths like the simulator's cycle loop. Cheap to
//!   record into, mergeable across launches, snapshotable to JSON.
//! * [`Event`] / [`EventRing`] / [`Severity`] — a ring-buffered,
//!   severity-leveled structured event stream. Inside the simulator every
//!   event carries a **cycle** timestamp (never wall-clock), so traces
//!   are bit-identical across worker-thread counts and compose with the
//!   `rcoal-parallel` determinism contract.
//! * [`MetricsRegistry`] / [`Counter`] / [`Gauge`] / [`AtomicHist`] — an
//!   `Arc`-shareable, thread-safe registry for the wall-clock
//!   (host-domain) edges: experiment sweeps, attack guess throughput,
//!   worker-pool utilization. Snapshots ([`MetricsSnapshot`]) serialize
//!   to a stable, sorted JSON form.
//! * [`Span`] — a wall-clock span that records its duration into the
//!   registry. Only ever used at the experiment/CLI edges; cycle-domain
//!   code must use cycle timestamps instead.
//!
//! The two domains are deliberately separate: **cycle-domain** telemetry
//! (events, simulator profiles) is deterministic and takes part in the
//! workspace's bit-identical-across-thread-counts guarantees;
//! **host-domain** metrics (spans, pool utilization, samples/sec) are
//! wall-clock truths about one run of one machine and are never compared
//! across runs.

// Library code must propagate failures as typed errors, never panic;
// test modules are exempt (the harness is the panic handler there).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod hist;
mod json;
mod metrics;
mod span;
mod trace;

pub use hist::{log2_bucket, Hist64, NUM_BUCKETS};
pub use json::json_escape;
pub use metrics::{AtomicHist, Counter, Gauge, HistSnapshot, MetricsRegistry, MetricsSnapshot};
pub use span::Span;
pub use trace::{Event, EventRing, Severity};
