//! Thread-safe metrics registry for the host-domain (wall-clock) edges.

use crate::hist::{log2_bucket, Hist64, NUM_BUCKETS};
use crate::json::json_escape;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// A monotonically increasing counter handle.
///
/// Cloning shares the underlying atomic; recording is one relaxed
/// `fetch_add`, safe from any worker thread.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge handle.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger (lock-free max).
    pub fn raise_to(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A thread-safe log2 histogram with the same bucket layout as
/// [`Hist64`]; all updates are relaxed atomics (per-bucket counts, count
/// and sum — min/max are tracked with `fetch_min`/`fetch_max`).
#[derive(Debug)]
pub struct AtomicHist {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHist {
    fn default() -> Self {
        AtomicHist {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl AtomicHist {
    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[log2_bucket(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Snapshot as a plain [`Hist64`]-shaped summary.
    pub fn snapshot(&self) -> HistSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: (count > 0).then(|| self.min.load(Ordering::Relaxed)),
            max: (count > 0).then(|| self.max.load(Ordering::Relaxed)),
        }
    }
}

/// Point-in-time summary of an [`AtomicHist`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket counts ([`NUM_BUCKETS`] entries, [`Hist64`] layout).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation, `None` if empty.
    pub min: Option<u64>,
    /// Largest observation, `None` if empty.
    pub max: Option<u64>,
}

impl HistSnapshot {
    /// Stable JSON form, listing only non-empty buckets.
    pub fn to_json(&self) -> String {
        let mut buckets = String::new();
        let mut first = true;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if !first {
                buckets.push(',');
            }
            first = false;
            let (lo, hi) = Hist64::bucket_bounds(i);
            buckets.push_str(&format!("{{\"lo\":{lo},\"hi\":{hi},\"n\":{n}}}"));
        }
        let mean = if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        };
        format!(
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{:.3},\"buckets\":[{}]}}",
            self.count,
            self.sum,
            self.min.unwrap_or(0),
            self.max.unwrap_or(0),
            mean,
            buckets
        )
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    hists: Mutex<BTreeMap<String, Arc<AtomicHist>>>,
}

/// An `Arc`-shareable, thread-safe registry of named counters, gauges,
/// and histograms.
///
/// Handles are resolved once (a mutex-guarded map lookup) and then
/// recorded through lock-free; clone the registry to share it across
/// threads or layers. [`MetricsRegistry::snapshot`] freezes everything
/// into a [`MetricsSnapshot`] whose JSON form is stable (sorted names),
/// so two snapshots with the same values serialize identically.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<RegistryInner>,
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolves (creating on first use) the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self
            .inner
            .counters
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        map.entry(name.to_string()).or_default().clone()
    }

    /// Resolves (creating on first use) the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self
            .inner
            .gauges
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        map.entry(name.to_string()).or_default().clone()
    }

    /// Resolves (creating on first use) the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<AtomicHist> {
        let mut map = self
            .inner
            .hists
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Folds a plain [`Hist64`] (e.g. a merged simulator profile) into
    /// the registry histogram named `name`.
    pub fn merge_hist(&self, name: &str, hist: &Hist64) {
        let h = self.histogram(name);
        for i in 0..NUM_BUCKETS {
            let n = hist.bucket(i);
            if n > 0 {
                h.buckets[i].fetch_add(n, Ordering::Relaxed);
            }
        }
        h.count.fetch_add(hist.count(), Ordering::Relaxed);
        h.sum.fetch_add(hist.sum(), Ordering::Relaxed);
        if let Some(min) = hist.min() {
            h.min.fetch_min(min, Ordering::Relaxed);
        }
        if let Some(max) = hist.max() {
            h.max.fetch_max(max, Ordering::Relaxed);
        }
    }

    /// Freezes every metric into a point-in-time snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .inner
            .counters
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .inner
            .gauges
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let hists = self
            .inner
            .hists
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            hists,
        }
    }
}

/// A frozen view of a [`MetricsRegistry`] with a stable serialized form.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram summaries by name.
    pub hists: BTreeMap<String, HistSnapshot>,
}

impl MetricsSnapshot {
    /// Serializes the snapshot as one stable JSON object: names sorted
    /// (`BTreeMap` order), nested under `"counters"`, `"gauges"`, and
    /// `"histograms"`, with a `"schema"` identifier for downstream
    /// tooling.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"rcoal-metrics/v1\"");
        out.push_str(",\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", json_escape(k)));
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", json_escape(k)));
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, v)) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", json_escape(k), v.to_json()));
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counters_and_gauges_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("x.count");
        c.inc();
        c.add(4);
        assert_eq!(reg.counter("x.count").get(), 5, "same name, same counter");
        let g = reg.gauge("x.depth");
        g.set(7);
        g.raise_to(3);
        assert_eq!(g.get(), 7, "raise_to never lowers");
        g.raise_to(11);
        assert_eq!(reg.gauge("x.depth").get(), 11);
    }

    #[test]
    fn histogram_snapshot_matches_recordings() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat");
        h.record(0);
        h.record(100);
        h.record(u64::MAX);
        let s = reg.snapshot().hists["lat"].clone();
        assert_eq!(s.count, 3);
        assert_eq!(s.min, Some(0));
        assert_eq!(s.max, Some(u64::MAX));
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[64], 1);
    }

    #[test]
    fn merge_hist_folds_plain_histograms() {
        let reg = MetricsRegistry::new();
        let mut plain = Hist64::new();
        plain.record(5);
        plain.record(5);
        plain.record(1000);
        reg.merge_hist("sim.lat", &plain);
        reg.merge_hist("sim.lat", &plain);
        let s = reg.snapshot().hists["sim.lat"].clone();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 2020);
        assert_eq!(s.min, Some(5));
        assert_eq!(s.max, Some(1000));
    }

    #[test]
    fn concurrent_updates_are_lossless() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("n");
        let h = reg.histogram("h");
        thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..1000 {
                        c.inc();
                        h.record(i);
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
        assert_eq!(reg.snapshot().hists["h"].count, 8000);
    }

    #[test]
    fn snapshot_json_is_stable_and_sorted() {
        let reg = MetricsRegistry::new();
        reg.counter("zeta").add(1);
        reg.counter("alpha").add(2);
        reg.gauge("mid").set(3);
        let a = reg.snapshot().to_json();
        let b = reg.snapshot().to_json();
        assert_eq!(a, b, "same values serialize identically");
        let alpha = a.find("\"alpha\"").unwrap();
        let zeta = a.find("\"zeta\"").unwrap();
        assert!(alpha < zeta, "names are sorted");
        assert!(a.starts_with("{\"schema\":\"rcoal-metrics/v1\""));
        assert!(a.contains("\"histograms\":{}"));
    }

    #[test]
    fn clones_share_the_registry() {
        let reg = MetricsRegistry::new();
        let other = reg.clone();
        other.counter("shared").add(9);
        assert_eq!(reg.snapshot().counters["shared"], 9);
    }
}
