//! Wall-clock spans for the experiment/CLI edges.
//!
//! Spans are the only wall-clock timestamps in the telemetry layer.
//! They are **host-domain**: never use one inside the simulator's cycle
//! loop, where timestamps must be core cycles so traces stay
//! bit-identical across worker-thread counts.

use crate::metrics::MetricsRegistry;
use std::time::{Duration, Instant};

/// An in-progress wall-clock measurement that records its duration into
/// a [`MetricsRegistry`] when finished:
/// `span.<name>.micros` (total microseconds) and `span.<name>.calls`.
#[derive(Debug)]
pub struct Span {
    name: String,
    start: Instant,
    registry: MetricsRegistry,
}

impl MetricsRegistry {
    /// Starts a wall-clock span named `name`.
    pub fn span(&self, name: &str) -> Span {
        Span {
            name: name.to_string(),
            start: Instant::now(),
            registry: self.clone(),
        }
    }
}

impl Span {
    /// Ends the span, records it, and returns the measured duration.
    pub fn finish(self) -> Duration {
        let elapsed = self.start.elapsed();
        self.registry
            .counter(&format!("span.{}.micros", self.name))
            .add(elapsed.as_micros().min(u128::from(u64::MAX)) as u64);
        self.registry
            .counter(&format!("span.{}.calls", self.name))
            .inc();
        elapsed
    }

    /// Elapsed time so far without ending the span.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finished_spans_record_micros_and_calls() {
        let reg = MetricsRegistry::new();
        let span = reg.span("attack");
        std::thread::sleep(Duration::from_millis(2));
        assert!(span.elapsed() >= Duration::from_millis(2));
        let d = span.finish();
        let snap = reg.snapshot();
        assert_eq!(snap.counters["span.attack.calls"], 1);
        assert!(snap.counters["span.attack.micros"] >= 2000);
        assert!(d >= Duration::from_millis(2));
        // A second span accumulates into the same counters.
        reg.span("attack").finish();
        assert_eq!(reg.snapshot().counters["span.attack.calls"], 2);
    }
}
