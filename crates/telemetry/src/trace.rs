//! Ring-buffered, severity-leveled structured event stream.

use std::collections::VecDeque;

/// Event severity, ordered from chattiest to most urgent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Per-instruction detail (coalesce results, queue movements).
    Debug,
    /// Lifecycle milestones (launch, warp finish, kernel done).
    Info,
    /// Recoverable anomalies (dropped replies, backpressure bursts).
    Warn,
    /// Forward-progress failures (lost replies, stalls).
    Error,
}

impl Severity {
    /// Lower-case name used in serialized traces.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Debug => "debug",
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

impl std::str::FromStr for Severity {
    type Err = String;

    /// Parses the lower-case serialized name back into a severity, so
    /// scenario files and CLI flags share the trace vocabulary.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "debug" => Ok(Severity::Debug),
            "info" => Ok(Severity::Info),
            "warn" => Ok(Severity::Warn),
            "error" => Ok(Severity::Error),
            _ => Err(format!(
                "unknown severity {s:?} (expected debug, info, warn, or error)"
            )),
        }
    }
}

/// One structured trace event.
///
/// Events are a fixed, `Copy`-able shape so recording never allocates:
/// a component/code pair of static strings plus two generic operands
/// whose meaning is per-code (documented where the event is emitted).
/// Inside the simulator `cycle` is the **core cycle** — never
/// wall-clock — so event streams are bit-identical for a fixed seed
/// regardless of worker-thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Cycle timestamp (core cycles inside the simulator).
    pub cycle: u64,
    /// Severity level.
    pub severity: Severity,
    /// Emitting component, e.g. `"coalescer"`, `"dram"`, `"icnt"`.
    pub component: &'static str,
    /// Event kind within the component, e.g. `"load"`, `"reply_lost"`.
    pub code: &'static str,
    /// First operand (meaning depends on `code`).
    pub a: u64,
    /// Second operand (meaning depends on `code`).
    pub b: u64,
}

impl Event {
    /// Serializes the event as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        // component/code are compile-time literals (no escaping needed).
        format!(
            "{{\"cycle\":{},\"severity\":\"{}\",\"component\":\"{}\",\"code\":\"{}\",\"a\":{},\"b\":{}}}",
            self.cycle,
            self.severity.as_str(),
            self.component,
            self.code,
            self.a,
            self.b
        )
    }

    /// Compact human-readable one-liner (used in stall diagnostics).
    pub fn to_line(&self) -> String {
        format!(
            "[{} @{}] {}.{} a={} b={}",
            self.severity.as_str(),
            self.cycle,
            self.component,
            self.code,
            self.a,
            self.b
        )
    }
}

/// A bounded ring of the most recent [`Event`]s.
///
/// Events below `min_severity` are filtered at record time; once the
/// ring is full, the oldest retained event is evicted and counted in
/// [`EventRing::dropped`]. A capacity of zero keeps the ring permanently
/// empty (every retained-severity event counts as dropped), which is the
/// disabled configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRing {
    capacity: usize,
    min_severity: Severity,
    buf: VecDeque<Event>,
    dropped: u64,
}

impl EventRing {
    /// A ring retaining up to `capacity` events at `Debug` and above.
    pub fn with_capacity(capacity: usize) -> Self {
        EventRing {
            capacity,
            min_severity: Severity::Debug,
            buf: VecDeque::with_capacity(capacity.min(4096)),
            dropped: 0,
        }
    }

    /// Sets the minimum severity retained (events below it are skipped
    /// without counting as dropped).
    pub fn with_min_severity(mut self, min: Severity) -> Self {
        self.min_severity = min;
        self
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The configured severity floor.
    pub fn min_severity(&self) -> Severity {
        self.min_severity
    }

    /// Records an event, evicting the oldest if the ring is full.
    #[inline]
    pub fn record(&mut self, event: Event) {
        if event.severity < self.min_severity {
            return;
        }
        if self.buf.len() >= self.capacity {
            self.dropped += 1;
            if self.buf.pop_front().is_none() {
                return; // capacity 0: nothing is ever retained
            }
        }
        self.buf.push_back(event);
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted (or rejected by a zero capacity) so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.buf.iter()
    }

    /// The last `n` events, oldest first (the stall-diagnostic window).
    pub fn tail(&self, n: usize) -> Vec<Event> {
        let skip = self.buf.len().saturating_sub(n);
        self.buf.iter().skip(skip).copied().collect()
    }

    /// Drains the ring into a `Vec`, oldest first, resetting the ring.
    pub fn take_events(&mut self) -> Vec<Event> {
        self.buf.drain(..).collect()
    }

    /// Serializes the retained events as JSONL (one event per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.buf {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, severity: Severity) -> Event {
        Event {
            cycle,
            severity,
            component: "test",
            code: "tick",
            a: cycle,
            b: 0,
        }
    }

    #[test]
    fn ring_keeps_the_newest_events() {
        let mut r = EventRing::with_capacity(3);
        for c in 0..5 {
            r.record(ev(c, Severity::Info));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let cycles: Vec<u64> = r.events().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_retains_nothing() {
        let mut r = EventRing::with_capacity(0);
        r.record(ev(1, Severity::Error));
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn severity_floor_filters_quietly() {
        let mut r = EventRing::with_capacity(8).with_min_severity(Severity::Warn);
        r.record(ev(1, Severity::Debug));
        r.record(ev(2, Severity::Info));
        r.record(ev(3, Severity::Warn));
        r.record(ev(4, Severity::Error));
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 0, "filtered events are not 'dropped'");
        assert_eq!(r.min_severity(), Severity::Warn);
    }

    #[test]
    fn severity_orders_from_debug_to_error() {
        assert!(Severity::Debug < Severity::Info);
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
        assert_eq!(Severity::Warn.as_str(), "warn");
    }

    #[test]
    fn tail_returns_the_last_n_oldest_first() {
        let mut r = EventRing::with_capacity(10);
        for c in 0..6 {
            r.record(ev(c, Severity::Info));
        }
        let t = r.tail(2);
        assert_eq!(t.iter().map(|e| e.cycle).collect::<Vec<_>>(), vec![4, 5]);
        assert_eq!(r.tail(100).len(), 6);
    }

    #[test]
    fn jsonl_has_one_line_per_event() {
        let mut r = EventRing::with_capacity(4);
        r.record(ev(7, Severity::Info));
        r.record(ev(9, Severity::Error));
        let jsonl = r.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"cycle\":7"));
        assert!(lines[1].contains("\"severity\":\"error\""));
        assert!(lines[0].starts_with('{') && lines[0].ends_with('}'));
    }

    #[test]
    fn take_events_drains_and_resets() {
        let mut r = EventRing::with_capacity(4);
        r.record(ev(1, Severity::Info));
        let taken = r.take_events();
        assert_eq!(taken.len(), 1);
        assert!(r.is_empty());
    }

    #[test]
    fn event_line_format_is_stable() {
        let line = ev(12, Severity::Warn).to_line();
        assert_eq!(line, "[warn @12] test.tick a=12 b=0");
    }
}
