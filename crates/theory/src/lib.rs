//! # rcoal-theory
//!
//! The information-theoretic security analysis of RCoal (paper §V),
//! reproducing Table II: for each defense mechanism and subwarp count,
//! the correlation ρ between the attacker's best estimation vector and
//! the true coalesced-access counts, and the induced number of timing
//! samples `S ∝ 1/ρ²` needed for a successful attack.
//!
//! The analysis composes:
//!
//! * [`Occupancy`] — Definition 1's distribution 𝔑(m, n) of occupied
//!   memory blocks, computed by a stable DP and cross-checked against the
//!   Stirling-number closed form;
//! * [`frequency_classes`] / [`composition_classes`] — Definition 2's
//!   frequency set ℱ and §V-B3's size set 𝒲, collapsed from ~10¹²
//!   ordered vectors to a few thousand integer-partition classes;
//! * [`SecurityModel`] — the ρ formulas for FSS (§V-B1), FSS+RTS (§V-B2)
//!   and RSS+RTS (§V-B3), including Definition 3's subwarp-hit
//!   expectation;
//! * [`RCoalScore`] — the Eq. 7 trade-off metric of §VI-C.
//!
//! ```
//! use rcoal_theory::{table2, Mechanism, SecurityModel};
//!
//! let rows = table2();
//! // FSS alone is transparent to the FSS attack (ρ = 1) ...
//! assert_eq!(rows[2].m, 4);
//! assert_eq!(rows[2].rho_fss, 1.0);
//! // ... while FSS+RTS at M = 16 needs ~961× more samples.
//! assert!(rows[4].s_fss_rts > 500.0);
//!
//! let model = SecurityModel::default();
//! assert!(model.rho(Mechanism::RssRts, 4) < 0.25);
//! ```

mod model;
mod occupancy;
mod partitions;
mod score;
mod stirling;

pub use model::{table2, table2_for, Mechanism, SecurityModel, Table2Row};
pub use occupancy::{occupancy_mean, Occupancy};
pub use partitions::{
    composition_classes, frequency_classes, partitions_at_most, partitions_exact, WeightedPartition,
};
pub use score::RCoalScore;
pub use stirling::{binomial, factorial, stirling2, stirling2_exact};
