//! The analytical security model of §V: correlation ρ between the
//! attacker's estimation vector and the defense's actual coalesced-access
//! counts, and the induced normalized sample count S ∝ 1/ρ², for each
//! defense mechanism. Reproduces the paper's Table II.

use crate::occupancy::Occupancy;
use crate::partitions::{composition_classes, frequency_classes};
use crate::stirling::binomial;

/// The defense mechanisms covered by the closed-form analysis. (The paper
/// skips standalone RSS, whose cross-moment needs the full mapping
/// enumeration; its security is evaluated empirically in §VI.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mechanism {
    /// Fixed-sized subwarps.
    Fss,
    /// Fixed-sized subwarps with random thread allocation.
    FssRts,
    /// Random-sized (skewed) subwarps with random thread allocation.
    RssRts,
}

impl std::fmt::Display for Mechanism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Mechanism::Fss => f.write_str("FSS"),
            Mechanism::FssRts => f.write_str("FSS+RTS"),
            Mechanism::RssRts => f.write_str("RSS+RTS"),
        }
    }
}

/// Analytical model for `N` threads over `R` memory blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SecurityModel {
    /// Threads per warp (32 in the paper).
    pub n: usize,
    /// Memory blocks the lookup table spans (16 in the paper).
    pub r: usize,
}

impl Default for SecurityModel {
    fn default() -> Self {
        SecurityModel { n: 32, r: 16 }
    }
}

/// Per-thread probability table for Definition 3: `hit[c][f]` is the
/// probability that a subwarp of capacity `c` contains at least one of
/// the `f` threads that access a given block, under a uniform random
/// permutation of all `s` threads: `1 − C(s−c, f)/C(s, f)`.
fn hit_table(s: usize) -> Vec<Vec<f64>> {
    let mut t = vec![vec![0.0; s + 1]; s + 1];
    for (c, row) in t.iter_mut().enumerate() {
        for (f, cell) in row.iter_mut().enumerate() {
            let denom = binomial(s, f);
            if denom > 0.0 {
                *cell = 1.0 - binomial(s - c, f) / denom;
            }
        }
    }
    t
}

impl SecurityModel {
    /// Builds a model; the paper's instance is `SecurityModel::default()`.
    ///
    /// # Panics
    ///
    /// Panics unless `n ≥ 1` and `r ≥ 1`.
    pub fn new(n: usize, r: usize) -> Self {
        assert!(n >= 1 && r >= 1, "model needs positive n and r");
        SecurityModel { n, r }
    }

    /// The correlation ρ(U, Û) between the true and attacker-estimated
    /// access counts for `mechanism` with `m` subwarps.
    ///
    /// # Panics
    ///
    /// Panics if `m` does not divide `n` (subwarps are sized `n/m` for
    /// the FSS-based mechanisms, and the paper's RSS+RTS analysis assumes
    /// the same sweep).
    pub fn rho(&self, mechanism: Mechanism, m: usize) -> f64 {
        assert!(
            m >= 1 && m <= self.n && self.n.is_multiple_of(m),
            "number of subwarps must divide the warp size"
        );
        match mechanism {
            Mechanism::Fss => self.rho_fss(m),
            Mechanism::FssRts => self.rho_fss_rts(m),
            Mechanism::RssRts => self.rho_rss_rts(m),
        }
    }

    /// Normalized sample count `S = 1/ρ²` (relative to FSS at `m = 1`,
    /// where ρ = 1); `∞` when ρ = 0.
    pub fn normalized_samples(&self, mechanism: Mechanism, m: usize) -> f64 {
        let rho = self.rho(mechanism, m);
        if rho <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / (rho * rho)
        }
    }

    fn rho_fss(&self, m: usize) -> f64 {
        // U ≡ Û: the attacker's Algorithm 1 reproduces the count exactly,
        // so ρ = 1 whenever U varies at all. With subwarps of size 1 the
        // count is constantly n and the channel is closed.
        let per = Occupancy::new(self.n / m, self.r);
        if per.variance() * m as f64 > 1e-12 {
            1.0
        } else {
            0.0
        }
    }

    fn rho_fss_rts(&self, m: usize) -> f64 {
        let size = self.n / m;
        let per = Occupancy::new(size, self.r);
        let mu = m as f64 * per.mean();
        let var = m as f64 * per.variance();
        if var <= 1e-12 {
            return 0.0;
        }
        // ḡ[f]: expected accesses contributed by a block with frequency f,
        // summed over the M equal-capacity subwarps.
        let hit = hit_table(self.n);
        let gbar: Vec<f64> = (0..=self.n).map(|f| m as f64 * hit[size][f]).collect();
        let cross = self.mu_cross(&gbar);
        ((cross - mu * mu) / var).clamp(-1.0, 1.0)
    }

    fn rho_rss_rts(&self, m: usize) -> f64 {
        if m == self.n {
            return 0.0; // all subwarps have size 1: constant count
        }
        let classes = composition_classes(self.n, m);
        // Precompute 𝔑(w, R) moments for every distinct part size.
        let occ: Vec<Occupancy> = (0..=self.n)
            .map(|w| Occupancy::new(w.max(1), self.r))
            .collect();

        // μ(U) and μ(U²) over the size classes.
        let mut mu = 0.0;
        let mut mu2 = 0.0;
        for class in &classes {
            let mean_w: f64 = class.parts.iter().map(|&w| occ[w].mean()).sum();
            let var_w: f64 = class.parts.iter().map(|&w| occ[w].variance()).sum();
            mu += class.probability * mean_w;
            mu2 += class.probability * (var_w + mean_w * mean_w);
        }
        let var = mu2 - mu * mu;
        if var <= 1e-12 {
            return 0.0;
        }

        // ḡ[f] = Σ_W P(W) Σ_{c∈W} hit[c][f]: expected contribution of a
        // frequency-f block, marginalized over subwarp sizes.
        let hit = hit_table(self.n);
        let mut gbar = vec![0.0; self.n + 1];
        for class in &classes {
            for f in 0..=self.n {
                let sum_c: f64 = class.parts.iter().map(|&c| hit[c][f]).sum();
                gbar[f] += class.probability * sum_c;
            }
        }
        let cross = self.mu_cross(&gbar);
        ((cross - mu * mu) / var).clamp(-1.0, 1.0)
    }

    /// `μ(U × Û) = Σ_F P(F) · μ(U|F)²` (Eq. 6), with
    /// `μ(U|F) = Σ_{f ∈ F} ḡ[f]` by linearity over blocks.
    fn mu_cross(&self, gbar: &[f64]) -> f64 {
        frequency_classes(self.n, self.r)
            .iter()
            .map(|class| {
                let mu_f: f64 = class.parts.iter().map(|&f| gbar[f]).sum();
                class.probability * mu_f * mu_f
            })
            .sum()
    }
}

/// One row of Table II.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Row {
    /// Number of subwarps `M`.
    pub m: usize,
    /// ρ for FSS.
    pub rho_fss: f64,
    /// ρ for FSS+RTS.
    pub rho_fss_rts: f64,
    /// ρ for RSS+RTS.
    pub rho_rss_rts: f64,
    /// Normalized samples for FSS.
    pub s_fss: f64,
    /// Normalized samples for FSS+RTS.
    pub s_fss_rts: f64,
    /// Normalized samples for RSS+RTS.
    pub s_rss_rts: f64,
}

/// Computes the paper's Table II (`N = 32`, `R = 16`,
/// `M ∈ {1, 2, 4, 8, 16, 32}`).
pub fn table2() -> Vec<Table2Row> {
    table2_for(SecurityModel::default())
}

/// Table II for an arbitrary model size (`m` sweeps the divisors of `n`).
pub fn table2_for(model: SecurityModel) -> Vec<Table2Row> {
    (0..)
        .map(|k| 1usize << k)
        .take_while(|&m| m <= model.n)
        .filter(|&m| model.n.is_multiple_of(m))
        .map(|m| Table2Row {
            m,
            rho_fss: model.rho(Mechanism::Fss, m),
            rho_fss_rts: model.rho(Mechanism::FssRts, m),
            rho_rss_rts: model.rho(Mechanism::RssRts, m),
            s_fss: model.normalized_samples(Mechanism::Fss, m),
            s_fss_rts: model.normalized_samples(Mechanism::FssRts, m),
            s_rss_rts: model.normalized_samples(Mechanism::RssRts, m),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const MODEL: SecurityModel = SecurityModel { n: 32, r: 16 };

    #[test]
    fn fss_is_fully_correlated_until_fully_split() {
        for m in [1, 2, 4, 8, 16] {
            assert_eq!(MODEL.rho(Mechanism::Fss, m), 1.0, "M={m}");
            assert_eq!(MODEL.normalized_samples(Mechanism::Fss, m), 1.0);
        }
        assert_eq!(MODEL.rho(Mechanism::Fss, 32), 0.0);
        assert_eq!(MODEL.normalized_samples(Mechanism::Fss, 32), f64::INFINITY);
    }

    #[test]
    fn rts_mechanisms_equal_one_at_m1_and_zero_at_m32() {
        for mech in [Mechanism::FssRts, Mechanism::RssRts] {
            assert!(
                (MODEL.rho(mech, 1) - 1.0).abs() < 1e-6,
                "{mech} at M=1: {}",
                MODEL.rho(mech, 1)
            );
            assert_eq!(MODEL.rho(mech, 32), 0.0, "{mech} at M=32");
        }
    }

    #[test]
    fn table_2_fss_rts_row_values() {
        // Paper Table II: ρ(FSS+RTS) = 1.00, 0.41, 0.20, 0.09, 0.03, 0.
        let expect = [(2, 0.41), (4, 0.20), (8, 0.09), (16, 0.03)];
        for (m, rho) in expect {
            let got = MODEL.rho(Mechanism::FssRts, m);
            assert!(
                (got - rho).abs() < 0.015,
                "FSS+RTS M={m}: got {got}, paper {rho}"
            );
        }
    }

    #[test]
    fn table_2_rss_rts_row_values() {
        // Paper Table II: ρ(RSS+RTS) = 1.00, 0.20, 0.15, 0.11, 0.05, 0.
        let expect = [(2, 0.20), (4, 0.15), (8, 0.11), (16, 0.05)];
        for (m, rho) in expect {
            let got = MODEL.rho(Mechanism::RssRts, m);
            assert!(
                (got - rho).abs() < 0.02,
                "RSS+RTS M={m}: got {got}, paper {rho}"
            );
        }
    }

    #[test]
    fn table_2_sample_counts() {
        // S = 1/ρ²: paper reports 6/24/115/961 for FSS+RTS and
        // 25/42/78/349 for RSS+RTS.
        let t = table2();
        let row = |m: usize| t.iter().find(|r| r.m == m).unwrap();
        assert!((5.0..8.0).contains(&row(2).s_fss_rts));
        assert!((20.0..30.0).contains(&row(4).s_fss_rts));
        assert!((90.0..140.0).contains(&row(8).s_fss_rts));
        assert!((700.0..1300.0).contains(&row(16).s_fss_rts));
        assert!((20.0..31.0).contains(&row(2).s_rss_rts));
        assert!((35.0..50.0).contains(&row(4).s_rss_rts));
        assert!((65.0..95.0).contains(&row(8).s_rss_rts));
        assert!((280.0..450.0).contains(&row(16).s_rss_rts));
        assert!(row(32).s_fss.is_infinite());
        assert!(row(32).s_fss_rts.is_infinite());
        assert!(row(32).s_rss_rts.is_infinite());
    }

    #[test]
    fn crossover_between_fss_rts_and_rss_rts() {
        // Paper: RSS+RTS is stronger (smaller ρ) at M ∈ {2, 4}; FSS+RTS
        // is stronger at M ∈ {8, 16}.
        for m in [2, 4] {
            assert!(
                MODEL.rho(Mechanism::RssRts, m) < MODEL.rho(Mechanism::FssRts, m),
                "RSS+RTS should win at M={m}"
            );
        }
        for m in [8, 16] {
            assert!(
                MODEL.rho(Mechanism::FssRts, m) < MODEL.rho(Mechanism::RssRts, m),
                "FSS+RTS should win at M={m}"
            );
        }
    }

    #[test]
    fn rho_decreases_with_subwarp_count_for_fss_rts() {
        let mut prev = 1.1;
        for m in [1, 2, 4, 8, 16] {
            let rho = MODEL.rho(Mechanism::FssRts, m);
            assert!(rho < prev, "ρ must fall with M (M={m}: {rho} vs {prev})");
            prev = rho;
        }
    }

    #[test]
    fn small_models_behave() {
        let small = SecurityModel::new(4, 4);
        assert!((small.rho(Mechanism::FssRts, 1) - 1.0).abs() < 1e-9);
        let rho2 = small.rho(Mechanism::FssRts, 2);
        assert!(rho2 > 0.0 && rho2 < 1.0);
        assert_eq!(small.rho(Mechanism::Fss, 4), 0.0);
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn non_divisor_subwarp_count_panics() {
        let _ = MODEL.rho(Mechanism::FssRts, 3);
    }

    #[test]
    fn workload_geometries_share_the_qualitative_structure() {
        // The registry's non-AES table kernels stress the model at
        // R = 32 (PRESENT/GIFT, 2-byte entries) and R = 8 (RECTANGLE,
        // 8-byte entries). The closed form must keep Table II's shape
        // at both: FSS fully correlated until fully split, RTS variants
        // strictly decreasing in M, everything closed at M = N.
        for r in [8, 32] {
            let model = SecurityModel::new(32, r);
            for m in [1, 2, 4, 8, 16] {
                assert_eq!(model.rho(Mechanism::Fss, m), 1.0, "FSS R={r} M={m}");
            }
            let mut prev = 1.0 + 1e-9;
            for m in [1, 2, 4, 8, 16] {
                let rho = model.rho(Mechanism::FssRts, m);
                assert!(rho < prev, "FSS+RTS must fall with M (R={r}, M={m})");
                assert!(rho > 0.0, "channel still open below full split");
                prev = rho;
            }
            for mech in [Mechanism::Fss, Mechanism::FssRts, Mechanism::RssRts] {
                assert_eq!(model.rho(mech, 32), 0.0, "{mech} at M=32, R={r}");
            }
        }
    }

    #[test]
    fn fewer_blocks_means_weaker_channel_under_rts() {
        // With fewer table blocks, per-subwarp occupancy saturates and
        // the attacker's estimate tracks the count less tightly: at a
        // fixed M, ρ(FSS+RTS) must not grow as R shrinks 32 → 16 → 8.
        for m in [2, 4, 8] {
            let rho8 = SecurityModel::new(32, 8).rho(Mechanism::FssRts, m);
            let rho16 = SecurityModel::new(32, 16).rho(Mechanism::FssRts, m);
            let rho32 = SecurityModel::new(32, 32).rho(Mechanism::FssRts, m);
            assert!(rho8 <= rho16 + 1e-9, "M={m}: R=8 {rho8} vs R=16 {rho16}");
            assert!(rho16 <= rho32 + 1e-9, "M={m}: R=16 {rho16} vs R=32 {rho32}");
        }
    }

    #[test]
    fn table2_for_covers_workload_geometries() {
        for r in [8, 32] {
            let rows = table2_for(SecurityModel::new(32, r));
            assert_eq!(
                rows.iter().map(|row| row.m).collect::<Vec<_>>(),
                vec![1, 2, 4, 8, 16, 32],
                "R={r}"
            );
            assert!((rows[0].s_fss_rts - 1.0).abs() < 1e-6, "M=1 is the unit");
            assert!(rows[5].s_fss_rts.is_infinite());
        }
    }

    #[test]
    fn table2_has_six_rows() {
        let t = table2();
        assert_eq!(
            t.iter().map(|r| r.m).collect::<Vec<_>>(),
            vec![1, 2, 4, 8, 16, 32]
        );
    }
}
