//! The occupancy distribution 𝔑(m, n) of the paper's Definition 1: the
//! number of coalesced accesses when `m` threads each access one of `n`
//! memory blocks uniformly at random.

use crate::stirling::{factorial, stirling2};

/// The distribution of the number of occupied blocks when `m` uniform
/// threads hit `n` blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct Occupancy {
    /// `pmf[i]` = P(exactly `i` distinct blocks are accessed).
    pmf: Vec<f64>,
}

impl Occupancy {
    /// Builds the distribution by dynamic programming on the thread
    /// count: adding one thread keeps the occupancy with probability
    /// `i/n` and grows it with probability `(n-i)/n`. Numerically stable
    /// for any `m`, `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(m: usize, n: usize) -> Self {
        assert!(n > 0, "occupancy needs at least one block");
        let mut pmf = vec![0.0f64; m + 1];
        pmf[0] = 1.0;
        for _ in 0..m {
            let mut next = vec![0.0f64; m + 1];
            for i in 0..=m.min(n) {
                let p = pmf[i];
                if p == 0.0 {
                    continue;
                }
                next[i] += p * i as f64 / n as f64;
                if i < m {
                    next[i + 1] += p * (n - i) as f64 / n as f64;
                }
            }
            pmf = next;
        }
        Occupancy { pmf }
    }

    /// Definition 1's closed form:
    /// `P(𝔑 = i) = n!/(n-i)! · S(m, i) / n^m`, with `S` the Stirling
    /// number of the second kind. Exists to cross-check [`Occupancy::new`].
    pub fn from_stirling(m: usize, n: usize) -> Self {
        assert!(n > 0, "occupancy needs at least one block");
        let log_nm = (n as f64).ln() * m as f64;
        let pmf = (0..=m)
            .map(|i| {
                if i > n || i > m {
                    return 0.0;
                }
                // n!/(n-i)! · S(m,i) / n^m, computed in log space to keep
                // m = 32, n = 16 within range.
                let perm = factorial(n) / factorial(n - i);
                let s = stirling2(m, i);
                if s == 0.0 || perm == 0.0 {
                    0.0
                } else {
                    (perm.ln() + s.ln() - log_nm).exp()
                }
            })
            .collect();
        Occupancy { pmf }
    }

    /// P(𝔑 = i).
    pub fn p(&self, i: usize) -> f64 {
        self.pmf.get(i).copied().unwrap_or(0.0)
    }

    /// The probability mass function.
    pub fn pmf(&self) -> &[f64] {
        &self.pmf
    }

    /// E[𝔑].
    pub fn mean(&self) -> f64 {
        self.pmf.iter().enumerate().map(|(i, p)| i as f64 * p).sum()
    }

    /// E[𝔑²].
    pub fn second_moment(&self) -> f64 {
        self.pmf
            .iter()
            .enumerate()
            .map(|(i, p)| (i * i) as f64 * p)
            .sum()
    }

    /// Var[𝔑].
    pub fn variance(&self) -> f64 {
        let m = self.mean();
        (self.second_moment() - m * m).max(0.0)
    }
}

/// Closed-form mean of 𝔑(m, n): `n · (1 − (1 − 1/n)^m)`.
pub fn occupancy_mean(m: usize, n: usize) -> f64 {
    assert!(n > 0, "occupancy needs at least one block");
    n as f64 * (1.0 - (1.0 - 1.0 / n as f64).powi(m as i32))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_sums_to_one() {
        for (m, n) in [(1, 16), (4, 4), (32, 16), (32, 1), (8, 100)] {
            let d = Occupancy::new(m, n);
            let sum: f64 = d.pmf().iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "m={m}, n={n}: sum={sum}");
        }
    }

    #[test]
    fn dp_matches_stirling_closed_form() {
        for (m, n) in [(2, 16), (4, 16), (8, 16), (16, 16), (32, 16), (5, 3)] {
            let dp = Occupancy::new(m, n);
            let st = Occupancy::from_stirling(m, n);
            for i in 0..=m {
                assert!(
                    (dp.p(i) - st.p(i)).abs() < 1e-10,
                    "m={m}, n={n}, i={i}: dp={}, stirling={}",
                    dp.p(i),
                    st.p(i)
                );
            }
        }
    }

    #[test]
    fn mean_matches_closed_form() {
        for (m, n) in [(1, 16), (4, 16), (32, 16), (10, 7)] {
            let d = Occupancy::new(m, n);
            assert!(
                (d.mean() - occupancy_mean(m, n)).abs() < 1e-10,
                "m={m}, n={n}"
            );
        }
    }

    #[test]
    fn one_thread_one_access() {
        let d = Occupancy::new(1, 16);
        assert!((d.p(1) - 1.0).abs() < 1e-15);
        assert!(d.variance() < 1e-15);
    }

    #[test]
    fn one_block_always_one_access() {
        let d = Occupancy::new(32, 1);
        assert!((d.p(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn paper_configuration_mean() {
        // N = 32 threads over R = 16 blocks: E[accesses] ≈ 13.92. This is
        // the baseline last-round per-byte access count.
        let d = Occupancy::new(32, 16);
        assert!((d.mean() - 13.97).abs() < 0.01, "mean = {}", d.mean());
        assert!(d.variance() > 0.5 && d.variance() < 2.0);
    }

    #[test]
    fn occupancy_cannot_exceed_either_bound() {
        let d = Occupancy::new(32, 16);
        for i in 17..=32 {
            assert_eq!(d.p(i), 0.0, "cannot occupy more than 16 blocks");
        }
        assert_eq!(d.p(0), 0.0, "at least one block is occupied");
    }
}
