//! Integer-partition enumeration with multiplicity weights.
//!
//! The paper's analysis sums over the frequency set ℱ (all `(f_1..f_R)`
//! with `Σf_i = N`, Definition 2) and over the subwarp-size set 𝒲 (all
//! positive compositions of `N` into `M` parts). Direct enumeration is
//! huge (`C(47,15) ≈ 10¹²` frequency vectors), but every quantity involved
//! is symmetric in the parts, so we enumerate integer *partitions* and
//! weight each by the number of ordered vectors it represents — a few
//! thousand terms.

use crate::stirling::{binomial, factorial};

/// One partition class and its weights.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedPartition {
    /// The positive parts, non-increasing.
    pub parts: Vec<usize>,
    /// Probability mass of the whole class under the relevant uniform
    /// model (see [`frequency_classes`] / [`composition_classes`]).
    pub probability: f64,
}

fn for_each_partition(
    n: usize,
    max_parts: usize,
    max_part: usize,
    current: &mut Vec<usize>,
    out: &mut impl FnMut(&[usize]),
) {
    if n == 0 {
        out(current);
        return;
    }
    if current.len() == max_parts {
        return;
    }
    let hi = n.min(max_part);
    for p in (1..=hi).rev() {
        current.push(p);
        for_each_partition(n - p, max_parts, p, current, out);
        current.pop();
    }
}

/// All partitions of `n` into at most `max_parts` positive parts
/// (non-increasing order).
pub fn partitions_at_most(n: usize, max_parts: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    for_each_partition(n, max_parts, n, &mut cur, &mut |p| out.push(p.to_vec()));
    out
}

/// All partitions of `n` into exactly `parts` positive parts.
pub fn partitions_exact(n: usize, parts: usize) -> Vec<Vec<usize>> {
    partitions_at_most(n, parts)
        .into_iter()
        .filter(|p| p.len() == parts)
        .collect()
}

/// Product of `multiplicity!` over the distinct part values of a
/// non-increasing partition.
fn multiplicity_factor(parts: &[usize]) -> f64 {
    let mut acc = 1.0;
    let mut run = 1usize;
    for i in 1..=parts.len() {
        if i < parts.len() && parts[i] == parts[i - 1] {
            run += 1;
        } else {
            acc *= factorial(run);
            run = 1;
        }
    }
    acc
}

/// The frequency set ℱ of Definition 2, collapsed to partition classes.
///
/// Model: `n` threads each pick one of `r` blocks uniformly; `F` is the
/// vector of per-block access counts. Each returned class carries the
/// total probability of all ordered frequency vectors whose positive
/// parts equal the partition:
///
/// `P(class) = [R-block arrangements] × N!/(∏ fᵢ!) / Rᴺ`
///
/// The probabilities over all classes sum to 1.
pub fn frequency_classes(n: usize, r: usize) -> Vec<WeightedPartition> {
    let r_pow = (r as f64).ln() * n as f64;
    partitions_at_most(n, r)
        .into_iter()
        .map(|parts| {
            let k = parts.len();
            // Ways to assign the k distinct-part slots to r labelled
            // blocks (remaining blocks get frequency 0):
            // r!/( (r-k)! · ∏ mult_v! ).
            let arrangements = factorial(r) / (factorial(r - k) * multiplicity_factor(&parts));
            // Multinomial N! / ∏ f_i! (in log space with Rᴺ).
            let mut log_multinomial = factorial(n).ln();
            for &f in &parts {
                log_multinomial -= factorial(f).ln();
            }
            let probability = arrangements * (log_multinomial - r_pow).exp();
            WeightedPartition { parts, probability }
        })
        .collect()
}

/// The subwarp-size set 𝒲 of §V-B3, collapsed to partition classes.
///
/// Model: uniform over the `C(n-1, m-1)` compositions of `n` into `m`
/// positive parts (the skewed RSS distribution). Each class carries
/// `[orderings] / C(n-1, m-1)`; the probabilities sum to 1.
pub fn composition_classes(n: usize, m: usize) -> Vec<WeightedPartition> {
    let total = binomial(n - 1, m - 1);
    partitions_exact(n, m)
        .into_iter()
        .map(|parts| {
            let orderings = factorial(m) / multiplicity_factor(&parts);
            WeightedPartition {
                probability: orderings / total,
                parts,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_counts() {
        assert_eq!(partitions_at_most(4, 4).len(), 5); // p(4) = 5
        assert_eq!(partitions_at_most(5, 5).len(), 7); // p(5) = 7
        assert_eq!(partitions_at_most(5, 2).len(), 3); // 5, 4+1, 3+2
        assert_eq!(partitions_exact(5, 2).len(), 2); // 4+1, 3+2
        assert_eq!(partitions_exact(4, 4), vec![vec![1, 1, 1, 1]]);
        // p(32) = 8349.
        assert_eq!(partitions_at_most(32, 32).len(), 8349);
    }

    #[test]
    fn partitions_are_non_increasing_and_sum() {
        for p in partitions_at_most(12, 5) {
            assert!(p.windows(2).all(|w| w[0] >= w[1]));
            assert_eq!(p.iter().sum::<usize>(), 12);
            assert!(p.len() <= 5);
        }
    }

    #[test]
    fn multiplicity_factor_values() {
        assert_eq!(multiplicity_factor(&[3, 1]), 1.0);
        assert_eq!(multiplicity_factor(&[2, 2]), 2.0);
        assert_eq!(multiplicity_factor(&[1, 1, 1, 1]), 24.0);
        assert_eq!(multiplicity_factor(&[4, 2, 2, 1, 1, 1]), 12.0);
    }

    #[test]
    fn frequency_classes_sum_to_one() {
        for (n, r) in [(4, 4), (8, 16), (32, 16), (5, 2)] {
            let total: f64 = frequency_classes(n, r).iter().map(|c| c.probability).sum();
            assert!((total - 1.0).abs() < 1e-9, "n={n}, r={r}: {total}");
        }
    }

    #[test]
    fn frequency_classes_tiny_case_by_hand() {
        // 2 threads, 2 blocks: F ∈ {(2,0),(0,2)} with prob 1/4 each and
        // (1,1) with prob 1/2.
        let classes = frequency_classes(2, 2);
        let p_of = |parts: &[usize]| {
            classes
                .iter()
                .find(|c| c.parts == parts)
                .map(|c| c.probability)
                .unwrap()
        };
        assert!((p_of(&[2]) - 0.5).abs() < 1e-12);
        assert!((p_of(&[1, 1]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn composition_classes_sum_to_one() {
        for (n, m) in [(4, 2), (32, 4), (32, 16), (6, 6)] {
            let total: f64 = composition_classes(n, m)
                .iter()
                .map(|c| c.probability)
                .sum();
            assert!((total - 1.0).abs() < 1e-9, "n={n}, m={m}: {total}");
        }
    }

    #[test]
    fn composition_classes_match_stars_and_bars() {
        // n=4, m=2: compositions (1,3),(2,2),(3,1) — class {3,1} has
        // probability 2/3, class {2,2} has 1/3.
        let classes = composition_classes(4, 2);
        assert_eq!(classes.len(), 2);
        for c in classes {
            if c.parts == vec![3, 1] {
                assert!((c.probability - 2.0 / 3.0).abs() < 1e-12);
            } else {
                assert_eq!(c.parts, vec![2, 2]);
                assert!((c.probability - 1.0 / 3.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn frequency_class_count_is_tractable_for_paper_size() {
        // The whole point of the partition collapse: ~8k classes instead
        // of 16³² ordered mappings.
        let classes = frequency_classes(32, 16);
        assert!(classes.len() < 10_000);
        assert!(classes.len() > 5_000);
    }
}
