//! The RCoal_Score security/performance trade-off metric (paper Eq. 7).

/// Tunable security-vs-performance score:
///
/// `RCoal_Score = Sᵃ / execution_timᵇ`
///
/// where `S = (1/ρ̄)²` is the squared inverse of the average attack
/// correlation and `execution_time` is normalized to the baseline. The
/// exponents let a hardware engineer emphasize security (`a = b = 1`,
/// Figure 17a) or performance (`a = 1, b = 20`, Figure 17b).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RCoalScore {
    /// Security exponent `a`.
    pub a: f64,
    /// Performance exponent `b`.
    pub b: f64,
}

impl RCoalScore {
    /// The paper's security-oriented setting (`a = 1, b = 1`).
    pub fn security_oriented() -> Self {
        RCoalScore { a: 1.0, b: 1.0 }
    }

    /// The paper's performance-oriented setting (`a = 1, b = 20`).
    pub fn performance_oriented() -> Self {
        RCoalScore { a: 1.0, b: 20.0 }
    }

    /// Security strength `S = (1/ρ̄)²` from an average attack correlation;
    /// `∞` for a zero correlation.
    pub fn security_strength(avg_correlation: f64) -> f64 {
        let c = avg_correlation.abs();
        if c < 1e-12 {
            f64::INFINITY
        } else {
            1.0 / (c * c)
        }
    }

    /// Evaluates Eq. 7 from an average attack correlation and an
    /// execution time normalized to the baseline.
    ///
    /// # Panics
    ///
    /// Panics unless `normalized_time > 0`.
    pub fn score(&self, avg_correlation: f64, normalized_time: f64) -> f64 {
        assert!(normalized_time > 0.0, "execution time must be positive");
        Self::security_strength(avg_correlation).powf(self.a) / normalized_time.powf(self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stronger_security_scores_higher_at_equal_time() {
        let s = RCoalScore::security_oriented();
        assert!(s.score(0.1, 1.2) > s.score(0.5, 1.2));
    }

    #[test]
    fn performance_orientation_punishes_slowdowns() {
        let sec = RCoalScore::security_oriented();
        let perf = RCoalScore::performance_oriented();
        // Mechanism A: better security, 30% slower. Mechanism B: weaker
        // security, 5% slower.
        let (rho_a, t_a) = (0.05, 1.30);
        let (rho_b, t_b) = (0.10, 1.05);
        assert!(sec.score(rho_a, t_a) > sec.score(rho_b, t_b));
        assert!(perf.score(rho_a, t_a) < perf.score(rho_b, t_b));
    }

    #[test]
    fn zero_correlation_is_infinitely_secure() {
        assert_eq!(RCoalScore::security_strength(0.0), f64::INFINITY);
        assert_eq!(
            RCoalScore::security_oriented().score(0.0, 2.0),
            f64::INFINITY
        );
        assert!((RCoalScore::security_strength(0.5) - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_time_rejected() {
        let _ = RCoalScore::security_oriented().score(0.5, 0.0);
    }
}
