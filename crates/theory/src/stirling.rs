//! Combinatorial primitives: factorials, binomial coefficients and
//! Stirling numbers of the second kind.

/// `n!` as `f64` (exact up to 22!, then correctly rounded).
///
/// # Panics
///
/// Panics if `n > 170` (would overflow `f64`).
pub fn factorial(n: usize) -> f64 {
    assert!(n <= 170, "factorial overflows f64 beyond 170!");
    (1..=n).fold(1.0, |acc, k| acc * k as f64)
}

/// Binomial coefficient `C(n, k)` as `f64`; 0 when `k > n`.
pub fn binomial(n: usize, k: usize) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut acc = 1.0;
    for i in 0..k {
        acc = acc * (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

/// Stirling number of the second kind `S(n, k)` as an exact `u128`:
/// the number of ways to partition `n` labelled items into `k` non-empty
/// unlabelled subsets.
///
/// # Panics
///
/// Panics on internal overflow (safe for `n ≤ 32`, the paper's range).
pub fn stirling2_exact(n: usize, k: usize) -> u128 {
    if n == 0 && k == 0 {
        return 1;
    }
    if k == 0 || k > n {
        return 0;
    }
    // S(n, k) = k·S(n-1, k) + S(n-1, k-1)
    let mut row = vec![0u128; k + 1];
    row[0] = 1; // S(0, 0)
    for _i in 1..=n {
        let mut next = vec![0u128; k + 1];
        for j in 1..=k {
            next[j] = (j as u128)
                .checked_mul(row[j])
                .and_then(|v| v.checked_add(row[j - 1]))
                .expect("stirling2 overflow");
        }
        row = next;
    }
    row[k]
}

/// Stirling number of the second kind as `f64`.
pub fn stirling2(n: usize, k: usize) -> f64 {
    stirling2_exact(n, k) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorial_values() {
        assert_eq!(factorial(0), 1.0);
        assert_eq!(factorial(5), 120.0);
        assert_eq!(factorial(12), 479_001_600.0);
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(0, 0), 1.0);
        assert_eq!(binomial(5, 2), 10.0);
        assert_eq!(binomial(32, 16), 601_080_390.0);
        assert_eq!(binomial(4, 7), 0.0);
        assert_eq!(binomial(10, 0), 1.0);
    }

    #[test]
    fn binomial_symmetry_and_pascal() {
        for n in 0..20 {
            for k in 0..=n {
                assert_eq!(binomial(n, k), binomial(n, n - k));
                if n > 0 && k > 0 {
                    assert_eq!(binomial(n, k), binomial(n - 1, k - 1) + binomial(n - 1, k));
                }
            }
        }
    }

    #[test]
    fn stirling_known_values() {
        assert_eq!(stirling2_exact(0, 0), 1);
        assert_eq!(stirling2_exact(4, 2), 7);
        assert_eq!(stirling2_exact(5, 3), 25);
        assert_eq!(stirling2_exact(10, 5), 42_525);
        assert_eq!(stirling2_exact(3, 0), 0);
        assert_eq!(stirling2_exact(3, 4), 0);
        assert_eq!(stirling2_exact(7, 7), 1);
        assert_eq!(stirling2_exact(7, 1), 1);
    }

    #[test]
    fn stirling_row_sums_are_bell_numbers() {
        let bell = [1u128, 1, 2, 5, 15, 52, 203, 877, 4140];
        for (n, &b) in bell.iter().enumerate() {
            let sum: u128 = (0..=n).map(|k| stirling2_exact(n, k)).sum();
            assert_eq!(sum, b, "Bell({n})");
        }
    }

    #[test]
    fn stirling_recurrence_holds_at_32() {
        for k in 1..=16 {
            assert_eq!(
                stirling2_exact(32, k),
                (k as u128) * stirling2_exact(31, k) + stirling2_exact(31, k - 1)
            );
        }
    }
}
