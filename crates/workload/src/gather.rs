//! The irregular-access control workload: a seeded hash-gather kernel
//! with *no* secret-dependent indexing.
//!
//! Its table indices diffuse every byte of the input line through a
//! 64-bit mix, so no single observed byte (with or without a key
//! guess) predicts the coalescing behaviour — the exact shape of a
//! data-dependent but key-independent GPU workload. A sound leakage
//! audit must therefore label it `secure` even under the leakiest
//! policies; if it ever gates `leaky`, the audit is flagging irregular
//! access itself rather than key leakage (a false positive).

use rcoal_aes::Block;

/// Rounds of gather loads (kept short: the control does not need a
/// deep pipeline to exercise the channel machinery).
pub const GATHER_ROUNDS: usize = 4;

/// One table index for round `r`, lane byte-slot `j`: an FNV-style mix
/// of the full input line with the (round, slot) pair folded in.
pub fn gather_index(line: &Block, r: usize, j: usize) -> u8 {
    let mut h: u64 = 0x9E37_79B9_7F4A_7C15 ^ ((r as u64) << 8) ^ j as u64;
    for &b in line {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
    }
    // Finalizer (Murmur3-style): the multiply chain alone diffuses a
    // last-byte flip poorly into any fixed output window.
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    (h & 0xFF) as u8
}

/// Per-round index arrays for one line (the [`crate::TableKernel`]
/// index function of the gather workload).
pub fn gather_round_indices(line: &Block) -> Vec<[u8; 8]> {
    (0..GATHER_ROUNDS)
        .map(|r| {
            let mut idx = [0u8; 8];
            for (j, slot) in idx.iter_mut().enumerate() {
                *slot = gather_index(line, r, j);
            }
            idx
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_deterministic_and_line_sensitive() {
        let a = *b"abcdefghijklmnop";
        let mut b = a;
        b[15] ^= 1;
        assert_eq!(gather_round_indices(&a), gather_round_indices(&a));
        assert_ne!(gather_round_indices(&a), gather_round_indices(&b));
        assert_eq!(gather_round_indices(&a).len(), GATHER_ROUNDS);
    }

    #[test]
    fn single_byte_does_not_determine_the_index() {
        // Flip a byte the oracle would NOT attack (byte 12) and watch
        // slot 0's index change anyway: the mix is not byte-local.
        let a = [0u8; 16];
        let mut b = a;
        b[12] = 0xFF;
        assert_ne!(gather_index(&a, 0, 0), gather_index(&b, 0, 0));
    }

    #[test]
    fn indices_spread_over_the_full_table() {
        let mut seen = [false; 256];
        for i in 0..512u16 {
            let mut line = [0u8; 16];
            line[0] = (i & 0xFF) as u8;
            line[1] = (i >> 8) as u8;
            for r in 0..GATHER_ROUNDS {
                seen[usize::from(gather_index(&line, r, 0))] = true;
            }
        }
        let covered = seen.iter().filter(|&&s| s).count();
        assert!(covered > 200, "only {covered}/256 indices reached");
    }
}
