//! GIFT-64-128 (Banik et al., CHES 2017): 64-bit block, 128-bit key,
//! 28 rounds of SubCells → PermBits → AddRoundKey.
//!
//! The byte-table view: GIFT's PermBits sends the two nibbles of state
//! byte `j` to eight fixed bit positions, so SubCells + PermBits folds
//! into eight 256-entry tables exactly like PRESENT's. Unlike PRESENT,
//! the *real* first round applies the S-box before any key material, so
//! a faithful trace would have no key-dependent lookups in round 1. The
//! kernel model therefore treats round 1's key+constant mask as a
//! whitening applied *before* the table lookups (indices
//! `pt_j ^ mask_j`), keeping the byte-local channel the coalescing
//! attack needs; rounds 2..28 use the real cipher states. This is a
//! documented modeling choice (DESIGN.md §14), not a claim about GIFT's
//! round order — the encryption core itself is the published cipher,
//! checked against the designers' test vectors below.

/// The GIFT 4-bit S-box (GS).
pub const GIFT_SBOX: [u8; 16] = [
    0x1, 0xA, 0x4, 0xC, 0x6, 0xF, 0x3, 0x9, 0x2, 0xD, 0xB, 0x7, 0x5, 0x0, 0x8, 0xE,
];

const ROUNDS: usize = 28;

fn inv_sbox() -> [u8; 16] {
    let mut inv = [0u8; 16];
    let mut i = 0;
    while i < 16 {
        inv[GIFT_SBOX[i] as usize] = i as u8;
        i += 1;
    }
    inv
}

/// GIFT-64 bit permutation in closed form: bit `i` moves to
/// `P(i) = 4⌊i/16⌋ + 16((3⌊(i mod 16)/4⌋ + (i mod 4)) mod 4) + (i mod 4)`.
fn perm(i: usize) -> usize {
    4 * (i / 16) + 16 * ((3 * ((i % 16) / 4) + (i % 4)) % 4) + (i % 4)
}

fn perm_bits(x: u64) -> u64 {
    let mut out = 0u64;
    for i in 0..64 {
        out |= ((x >> i) & 1) << perm(i);
    }
    out
}

fn inv_perm_bits(x: u64) -> u64 {
    let mut out = 0u64;
    for i in 0..64 {
        out |= ((x >> perm(i)) & 1) << i;
    }
    out
}

fn sub_cells(x: u64) -> u64 {
    let mut out = 0u64;
    for n in 0..16 {
        out |= u64::from(GIFT_SBOX[((x >> (4 * n)) & 0xF) as usize]) << (4 * n);
    }
    out
}

fn inv_sub_cells(x: u64) -> u64 {
    let inv = inv_sbox();
    let mut out = 0u64;
    for n in 0..16 {
        out |= u64::from(inv[((x >> (4 * n)) & 0xF) as usize]) << (4 * n);
    }
    out
}

/// GIFT-64-128 with the 28 per-round key+constant masks precomputed.
#[derive(Debug, Clone)]
pub struct Gift64 {
    /// `masks[r]` is the full 64-bit XOR applied after round `r`'s
    /// PermBits: round key U‖V spread over bit positions 4i+1 / 4i,
    /// the fixed bit 63, and the 6-bit round constant.
    masks: [u64; ROUNDS],
}

impl Gift64 {
    /// Expands a 16-byte key; `key[0..2]` big-endian form the top key
    /// word k7.
    pub fn new(key: &[u8; 16]) -> Self {
        // Key state k7..k0, k7 most significant.
        let mut k = [0u16; 8];
        for i in 0..8 {
            k[7 - i] = u16::from_be_bytes([key[2 * i], key[2 * i + 1]]);
        }
        let mut c: u8 = 0; // 6-bit LFSR, advanced before each round
        let mut masks = [0u64; ROUNDS];
        for mask in masks.iter_mut() {
            c = ((c << 1) | (1 ^ ((c >> 5) & 1) ^ ((c >> 4) & 1))) & 0x3F;
            let (u, v) = (k[1], k[0]);
            let mut m = 1u64 << 63;
            for i in 0..16 {
                m |= u64::from((u >> i) & 1) << (4 * i + 1);
                m |= u64::from((v >> i) & 1) << (4 * i);
            }
            for (bit, pos) in [(5u8, 23u32), (4, 19), (3, 15), (2, 11), (1, 7), (0, 3)] {
                m |= u64::from((c >> bit) & 1) << pos;
            }
            *mask = m;
            k = [
                k[2],
                k[3],
                k[4],
                k[5],
                k[6],
                k[7],
                k[0].rotate_right(12),
                k[1].rotate_right(2),
            ];
        }
        Gift64 { masks }
    }

    /// The 28 per-round key+constant masks.
    pub fn masks(&self) -> &[u64; ROUNDS] {
        &self.masks
    }

    /// Modeled round-1 whitening bytes: big-endian bytes of the round-1
    /// key+constant mask (see the module docs for the modeling note).
    pub fn whitening(&self) -> [u8; 8] {
        self.masks[0].to_be_bytes()
    }

    /// Encrypts one 64-bit block (big-endian byte order).
    pub fn encrypt8(&self, pt: [u8; 8]) -> [u8; 8] {
        let mut s = u64::from_be_bytes(pt);
        for mask in &self.masks {
            s = perm_bits(sub_cells(s)) ^ mask;
        }
        s.to_be_bytes()
    }

    /// Decrypts one 64-bit block (round-trip check only).
    pub fn decrypt8(&self, ct: [u8; 8]) -> [u8; 8] {
        let mut s = u64::from_be_bytes(ct);
        for mask in self.masks.iter().rev() {
            s = inv_sub_cells(inv_perm_bits(s ^ mask));
        }
        s.to_be_bytes()
    }

    /// Per-round byte-table indices for one plaintext. Entry 0 is the
    /// modeled whitened round (`pt_j ^ mask_j`); entries 1..28 are the
    /// real cipher states entering each round's SubCells.
    pub fn round_index_bytes(&self, pt: [u8; 8]) -> Vec<[u8; 8]> {
        let mut out = Vec::with_capacity(ROUNDS);
        let mut s = u64::from_be_bytes(pt);
        out.push((s ^ self.masks[0]).to_be_bytes());
        for mask in &self.masks[..ROUNDS - 1] {
            s = perm_bits(sub_cells(s)) ^ mask;
            out.push(s.to_be_bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hexkey(s: &str) -> [u8; 16] {
        let mut out = [0u8; 16];
        for (i, b) in out.iter_mut().enumerate() {
            *b = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).expect("hex");
        }
        out
    }

    fn hex8(s: &str) -> [u8; 8] {
        u64::from_str_radix(s, 16).expect("hex").to_be_bytes()
    }

    /// The designers' GIFT-64-128 test vectors (CHES 2017 reference
    /// implementation).
    #[test]
    fn designer_test_vectors() {
        let cases = [
            (
                "00000000000000000000000000000000",
                "0000000000000000",
                "f62bc3ef34f775ac",
            ),
            (
                "fedcba9876543210fedcba9876543210",
                "fedcba9876543210",
                "c1b71f66160ff587",
            ),
        ];
        for (key, pt, ct) in cases {
            let cipher = Gift64::new(&hexkey(key));
            assert_eq!(cipher.encrypt8(hex8(pt)), hex8(ct), "key {key} pt {pt}");
            assert_eq!(cipher.decrypt8(hex8(ct)), hex8(pt));
        }
    }

    #[test]
    fn decrypt_round_trips_arbitrary_blocks() {
        let cipher = Gift64::new(b"gift-64 test key");
        for i in 0..32u64 {
            let pt = (i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).to_be_bytes();
            assert_eq!(cipher.decrypt8(cipher.encrypt8(pt)), pt);
        }
    }

    #[test]
    fn perm_bits_inverts_and_matches_spec_anchors() {
        for x in [0u64, u64::MAX, 0x0123_4567_89AB_CDEF, 1 << 63] {
            assert_eq!(inv_perm_bits(perm_bits(x)), x);
        }
        // Published permutation table anchors: P(1)=17, P(5)=1, P(7)=35,
        // P(12)=16, P(63)=15.
        assert_eq!(perm(1), 17);
        assert_eq!(perm(5), 1);
        assert_eq!(perm(7), 35);
        assert_eq!(perm(12), 16);
        assert_eq!(perm(63), 15);
    }

    #[test]
    fn round_constants_follow_the_published_sequence() {
        // The 6-bit LFSR must produce 01,03,07,0F,1F,3E,3D,3B,...
        let mut c: u8 = 0;
        let mut seq = Vec::new();
        for _ in 0..8 {
            c = ((c << 1) | (1 ^ ((c >> 5) & 1) ^ ((c >> 4) & 1))) & 0x3F;
            seq.push(c);
        }
        assert_eq!(seq, vec![0x01, 0x03, 0x07, 0x0F, 0x1F, 0x3E, 0x3D, 0x3B]);
    }

    #[test]
    fn sbox_is_a_bijection() {
        let mut seen = [false; 16];
        for v in GIFT_SBOX {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
    }

    #[test]
    fn round_indices_whiten_round_one_and_track_real_states() {
        let cipher = Gift64::new(b"gift-64 test key");
        let pt = *b"abcdefgh";
        let idx = cipher.round_index_bytes(pt);
        assert_eq!(idx.len(), 28);
        let w = cipher.whitening();
        for j in 0..8 {
            assert_eq!(idx[0][j], pt[j] ^ w[j], "modeled whitening is byte-local");
        }
        // Entries 1.. are the true states: replaying the round function
        // from entry r reproduces entry r+1.
        let mut s = u64::from_be_bytes(pt);
        for (r, bytes) in idx.iter().enumerate().skip(1) {
            s = perm_bits(sub_cells(s)) ^ cipher.masks()[r - 1];
            assert_eq!(*bytes, s.to_be_bytes(), "round {r}");
        }
    }
}
