//! # rcoal-workload
//!
//! The workload registry: the timing channel generalized over
//! table-based GPU kernels.
//!
//! The RCoal paper analyzes AES-128, but its channel model — lock-step
//! warps issuing table lookups whose indices are a byte-local function
//! of secret key material — fits any table-based cipher kernel. This
//! crate packages that abstraction as [`KernelWorkload`]: a named
//! workload that builds a GPU [`Kernel`] from a key and input lines,
//! exposes the attacker-observable text, the attacked subkey, the
//! attack's [`TableOracle`], and the table geometry the analytical
//! [`SecurityModel`](../rcoal_theory) needs (`R` blocks per table,
//! table count, loads per round).
//!
//! Registered workloads:
//!
//! - `aes` — the paper's AES-128 last-round attack (ciphertext
//!   observed, `t_j = S⁻¹[c_j ⊕ k_j]`, R = 16). Byte-identical to the
//!   pre-registry AES pipeline.
//! - `present80` — PRESENT-80 (CHES 2007) modeled as eight 256-entry
//!   byte tables; known-plaintext first-round attack on the whitening
//!   key `K1` (R = 32).
//! - `gift64` — GIFT-64-128 (CHES 2017), same byte-table view with a
//!   documented round-1 whitening model (R = 16).
//! - `rectangle` — RECTANGLE-128 bit-sliced rows packed into byte
//!   tables; first-round attack on `RK0` (R = 8).
//! - `gather` — a *non-cryptographic* irregular-access control whose
//!   indices hash the whole input line: data-dependent, key-free. A
//!   sound audit must gate it `secure`; it exists to falsify the
//!   leakage audit's positive direction.

// Library code must propagate failures as typed errors, never panic;
// test modules are exempt (the harness is the panic handler there).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod gather;
pub mod gift;
pub mod present;
pub mod rectangle;
mod table_kernel;

pub use table_kernel::{TableKernel, INPUT_BASE, LOADS_PER_ROUND, OUTPUT_BASE, TABLE_BASE};

use gather::{gather_round_indices, GATHER_ROUNDS};
use gift::Gift64;
use present::Present80;
use rcoal_aes::{Aes128, AesGpuKernel, Block};
use rcoal_attack::{aes_oracle, TableOracle, XorWhiteningOracle};
use rcoal_gpu_sim::Kernel;
use rectangle::Rectangle128;
use std::sync::Arc;

/// Table geometry of a workload, in the units the paper's analytical
/// model speaks: 64-byte coalescing blocks and 32-thread warps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadGeometry {
    /// Coalescing blocks per table — the `R` of the security model
    /// (`256 × entry_bytes / 64`).
    pub table_size_r: usize,
    /// Number of distinct tables the kernel reads.
    pub tables: usize,
    /// Threads per warp at the paper's configuration (`N = 32`).
    pub threads_per_warp: usize,
    /// Table lookups per round (AES: 16; 64-bit-block ciphers: 8).
    pub loads_per_round: usize,
    /// Rounds of table lookups in the kernel trace.
    pub rounds: usize,
    /// Cipher block size in bytes (16 for AES, 8 for the others).
    pub block_bytes: usize,
    /// Cipher key size in bytes (0 for the keyless control).
    pub key_bytes: usize,
    /// Subkey bytes the timing attack sweeps.
    pub attack_bytes: usize,
    /// Bytes per table entry.
    pub entry_bytes: usize,
}

impl WorkloadGeometry {
    /// Table entries sharing one 64-byte coalescing block.
    pub fn entries_per_block(&self) -> usize {
        64 / self.entry_bytes.max(1)
    }

    /// `log2(entries_per_block)` — the shift of a
    /// [`XorWhiteningOracle`] over this geometry.
    pub fn oracle_shift(&self) -> u32 {
        self.entries_per_block().trailing_zeros()
    }
}

/// A GPU kernel instance built by a workload: a simulator [`Kernel`]
/// that also exposes the per-line text the attacker observes
/// (ciphertexts for AES's last-round attack, plaintext lines for the
/// known-plaintext first-round attacks).
pub trait WorkloadKernel: Kernel + Send + Sync {
    /// Attacker-observable 16-byte lines, one per thread; the attack's
    /// oracle consumes byte columns of these.
    fn attack_text(&self) -> &[Block];
}

/// A registered table-based workload: everything the experiment
/// pipeline, the attack, the audit, and the theory need to treat a
/// kernel family generically.
pub trait KernelWorkload: Send + Sync {
    /// Registry name (stable; serialized into scenarios and run caches).
    fn name(&self) -> &'static str;

    /// One-line human description.
    fn description(&self) -> &'static str;

    /// Table geometry (feeds the analytical security model).
    fn geometry(&self) -> WorkloadGeometry;

    /// Builds the kernel for `lines` under `key` (workloads with
    /// shorter keys use a prefix; the keyless control ignores it).
    fn build_kernel(
        &self,
        key: &[u8; 16],
        lines: Vec<Block>,
        warp_size: usize,
    ) -> Box<dyn WorkloadKernel>;

    /// The subkey the timing attack recovers, zero-padded to 16 bytes
    /// (ground truth for scoring; the attack itself never reads it).
    fn attacked_subkey(&self, key: &[u8; 16]) -> [u8; 16];

    /// The attack's (observed byte, guess) → block-index oracle.
    fn oracle(&self) -> Arc<dyn TableOracle>;

    /// Round mark `r` such that `cycles_after_round(r)` isolates the
    /// final round + store (the AES attacker's §II-C segment).
    fn timing_boundary_round(&self) -> u16 {
        self.geometry().rounds.saturating_sub(1) as u16
    }

    /// Whether the analytical security model's `(N, R)` predictions
    /// apply (false for the key-free control, whose "leakage" the
    /// theory has nothing to say about).
    fn theory_comparable(&self) -> bool {
        true
    }
}

fn pad16(bytes: &[u8]) -> [u8; 16] {
    let mut out = [0u8; 16];
    out[..bytes.len().min(16)].copy_from_slice(&bytes[..bytes.len().min(16)]);
    out
}

fn block8(line: &Block) -> [u8; 8] {
    let mut b = [0u8; 8];
    b.copy_from_slice(&line[..8]);
    b
}

/// The paper's AES-128 workload, wrapping [`AesGpuKernel`] unchanged.
#[derive(Debug, Clone, Copy, Default)]
pub struct AesWorkload;

impl WorkloadKernel for AesGpuKernel {
    fn attack_text(&self) -> &[Block] {
        self.ciphertexts()
    }
}

impl KernelWorkload for AesWorkload {
    fn name(&self) -> &'static str {
        "aes"
    }

    fn description(&self) -> &'static str {
        "AES-128 T-table kernel; last-round attack on K10 (the paper's workload)"
    }

    fn geometry(&self) -> WorkloadGeometry {
        WorkloadGeometry {
            table_size_r: 16,
            tables: 5,
            threads_per_warp: 32,
            loads_per_round: 16,
            rounds: 10,
            block_bytes: 16,
            key_bytes: 16,
            attack_bytes: 16,
            entry_bytes: 4,
        }
    }

    fn build_kernel(
        &self,
        key: &[u8; 16],
        lines: Vec<Block>,
        warp_size: usize,
    ) -> Box<dyn WorkloadKernel> {
        Box::new(AesGpuKernel::new(key, lines, warp_size))
    }

    fn attacked_subkey(&self, key: &[u8; 16]) -> [u8; 16] {
        Aes128::new(key).last_round_key()
    }

    fn oracle(&self) -> Arc<dyn TableOracle> {
        aes_oracle()
    }
}

/// PRESENT-80 as a byte-table kernel (known-plaintext attack on `K1`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Present80Workload;

impl KernelWorkload for Present80Workload {
    fn name(&self) -> &'static str {
        "present80"
    }

    fn description(&self) -> &'static str {
        "PRESENT-80 byte-table kernel; first-round attack on whitening key K1"
    }

    fn geometry(&self) -> WorkloadGeometry {
        WorkloadGeometry {
            table_size_r: 32,
            tables: 8,
            threads_per_warp: 32,
            loads_per_round: 8,
            rounds: 31,
            block_bytes: 8,
            key_bytes: 10,
            attack_bytes: 8,
            entry_bytes: 8,
        }
    }

    fn build_kernel(
        &self,
        key: &[u8; 16],
        lines: Vec<Block>,
        warp_size: usize,
    ) -> Box<dyn WorkloadKernel> {
        let mut k80 = [0u8; 10];
        k80.copy_from_slice(&key[..10]);
        let cipher = Present80::new(&k80);
        let f = move |line: &Block| cipher.round_index_bytes(block8(line));
        Box::new(TableKernel::new(lines, warp_size, 8, &f))
    }

    fn attacked_subkey(&self, key: &[u8; 16]) -> [u8; 16] {
        let mut k80 = [0u8; 10];
        k80.copy_from_slice(&key[..10]);
        pad16(&Present80::new(&k80).whitening())
    }

    fn oracle(&self) -> Arc<dyn TableOracle> {
        Arc::new(XorWhiteningOracle::new(3, 8))
    }
}

/// GIFT-64-128 as a byte-table kernel (modeled round-1 whitening; see
/// [`gift`]'s module docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct Gift64Workload;

impl KernelWorkload for Gift64Workload {
    fn name(&self) -> &'static str {
        "gift64"
    }

    fn description(&self) -> &'static str {
        "GIFT-64-128 byte-table kernel; first-round attack on the modeled whitening mask"
    }

    fn geometry(&self) -> WorkloadGeometry {
        WorkloadGeometry {
            table_size_r: 16,
            tables: 8,
            threads_per_warp: 32,
            loads_per_round: 8,
            rounds: 28,
            block_bytes: 8,
            key_bytes: 16,
            attack_bytes: 8,
            entry_bytes: 4,
        }
    }

    fn build_kernel(
        &self,
        key: &[u8; 16],
        lines: Vec<Block>,
        warp_size: usize,
    ) -> Box<dyn WorkloadKernel> {
        let cipher = Gift64::new(key);
        let f = move |line: &Block| cipher.round_index_bytes(block8(line));
        Box::new(TableKernel::new(lines, warp_size, 4, &f))
    }

    fn attacked_subkey(&self, key: &[u8; 16]) -> [u8; 16] {
        pad16(&Gift64::new(key).whitening())
    }

    fn oracle(&self) -> Arc<dyn TableOracle> {
        Arc::new(XorWhiteningOracle::new(4, 8))
    }
}

/// RECTANGLE-128 as a byte-table kernel (first-round attack on `RK0`).
#[derive(Debug, Clone, Copy, Default)]
pub struct RectangleWorkload;

impl KernelWorkload for RectangleWorkload {
    fn name(&self) -> &'static str {
        "rectangle"
    }

    fn description(&self) -> &'static str {
        "RECTANGLE-128 byte-table kernel; first-round attack on round key RK0"
    }

    fn geometry(&self) -> WorkloadGeometry {
        WorkloadGeometry {
            table_size_r: 8,
            tables: 8,
            threads_per_warp: 32,
            loads_per_round: 8,
            rounds: 25,
            block_bytes: 8,
            key_bytes: 16,
            attack_bytes: 8,
            entry_bytes: 2,
        }
    }

    fn build_kernel(
        &self,
        key: &[u8; 16],
        lines: Vec<Block>,
        warp_size: usize,
    ) -> Box<dyn WorkloadKernel> {
        let cipher = Rectangle128::new(key);
        let f = move |line: &Block| cipher.round_index_bytes(block8(line));
        Box::new(TableKernel::new(lines, warp_size, 2, &f))
    }

    fn attacked_subkey(&self, key: &[u8; 16]) -> [u8; 16] {
        pad16(&Rectangle128::new(key).whitening())
    }

    fn oracle(&self) -> Arc<dyn TableOracle> {
        Arc::new(XorWhiteningOracle::new(5, 8))
    }
}

/// The key-free irregular-access control (see [`gather`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct GatherWorkload;

impl KernelWorkload for GatherWorkload {
    fn name(&self) -> &'static str {
        "gather"
    }

    fn description(&self) -> &'static str {
        "key-free hash-gather control; a sound audit must gate it secure"
    }

    fn geometry(&self) -> WorkloadGeometry {
        WorkloadGeometry {
            table_size_r: 16,
            tables: 8,
            threads_per_warp: 32,
            loads_per_round: 8,
            rounds: GATHER_ROUNDS,
            block_bytes: 16,
            key_bytes: 0,
            attack_bytes: 8,
            entry_bytes: 4,
        }
    }

    fn build_kernel(
        &self,
        _key: &[u8; 16],
        lines: Vec<Block>,
        warp_size: usize,
    ) -> Box<dyn WorkloadKernel> {
        Box::new(TableKernel::new(lines, warp_size, 4, &|line| {
            gather_round_indices(line)
        }))
    }

    fn attacked_subkey(&self, _key: &[u8; 16]) -> [u8; 16] {
        [0u8; 16]
    }

    fn oracle(&self) -> Arc<dyn TableOracle> {
        Arc::new(XorWhiteningOracle::new(4, 8))
    }

    fn theory_comparable(&self) -> bool {
        false
    }
}

static AES: AesWorkload = AesWorkload;
static PRESENT80: Present80Workload = Present80Workload;
static GIFT64: Gift64Workload = Gift64Workload;
static RECTANGLE: RectangleWorkload = RectangleWorkload;
static GATHER: GatherWorkload = GatherWorkload;

static REGISTRY: [&dyn KernelWorkload; 5] = [&AES, &PRESENT80, &GIFT64, &RECTANGLE, &GATHER];

/// All registered workloads, in registry order (`aes` first).
pub fn registry() -> &'static [&'static dyn KernelWorkload] {
    &REGISTRY
}

/// Looks a workload up by its registry name.
pub fn find(name: &str) -> Option<&'static dyn KernelWorkload> {
    registry().iter().copied().find(|w| w.name() == name)
}

/// Comma-separated registry names (for error messages and help text).
pub fn names() -> String {
    registry()
        .iter()
        .map(|w| w.name())
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcoal_gpu_sim::TraceInstr;

    fn lines(n: usize) -> Vec<Block> {
        (0..n)
            .map(|i| {
                let mut b = [0u8; 16];
                for (k, x) in b.iter_mut().enumerate() {
                    *x = (i * 53 + k * 17) as u8;
                }
                b
            })
            .collect()
    }

    #[test]
    fn registry_names_are_unique_and_findable() {
        let mut seen = std::collections::HashSet::new();
        for w in registry() {
            assert!(seen.insert(w.name()), "duplicate name {}", w.name());
            assert!(find(w.name()).is_some());
        }
        assert_eq!(registry().len(), 5);
        assert!(find("des").is_none());
        assert!(names().starts_with("aes, "));
    }

    #[test]
    fn geometries_are_self_consistent() {
        for w in registry() {
            let g = w.geometry();
            assert_eq!(
                g.table_size_r,
                256 * g.entry_bytes / 64,
                "{}: R must be 256 entries / entries-per-block",
                w.name()
            );
            assert_eq!(g.threads_per_warp, 32);
            assert!(g.attack_bytes <= 16);
            assert_eq!(w.oracle().key_bytes(), g.attack_bytes, "{}", w.name());
            assert!(usize::from(w.timing_boundary_round()) < g.rounds);
        }
    }

    #[test]
    fn aes_workload_wraps_the_reference_kernel() {
        let key = *b"rcoal-test-key!!";
        let l = lines(32);
        let wk = AES.build_kernel(&key, l.clone(), 32);
        let reference = AesGpuKernel::new(&key, l, 32);
        assert_eq!(wk.num_warps(), reference.num_warps());
        assert_eq!(wk.attack_text(), reference.ciphertexts());
        assert_eq!(wk.trace(0), reference.trace(0), "byte-identical traces");
        assert_eq!(
            AES.attacked_subkey(&key),
            Aes128::new(&key).last_round_key()
        );
        assert_eq!(AES.timing_boundary_round(), 9);
    }

    #[test]
    fn cipher_kernels_round_one_indices_match_the_oracle_model() {
        // For each whitening workload the round-1 load of byte j must
        // touch the block its oracle predicts for (text_j, subkey_j).
        let key = *b"0123456789abcdef";
        let l = lines(32);
        for name in ["present80", "gift64", "rectangle"] {
            let w = find(name).unwrap();
            let g = w.geometry();
            let kernel = w.build_kernel(&key, l.clone(), 32);
            let oracle = w.oracle();
            let subkey = w.attacked_subkey(&key);
            let text = kernel.attack_text().to_vec();
            let entry = g.entry_bytes as u64;
            let stride = 256 * entry;
            for instr in kernel.trace(0).instrs() {
                if let TraceInstr::Load { addrs, tag } = instr {
                    if *tag >= rcoal_aes::LAST_ROUND_TAG_BASE {
                        let j = usize::from(tag - rcoal_aes::LAST_ROUND_TAG_BASE);
                        for (lane, a) in addrs.iter().enumerate() {
                            let a = a.unwrap();
                            let within = a - (TABLE_BASE + j as u64 * stride);
                            let block = within / 64;
                            assert_eq!(
                                block,
                                oracle.block_of(text[lane][j], subkey[j]),
                                "{name} byte {j} lane {lane}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn gather_control_is_key_free() {
        let l = lines(32);
        let a = GATHER.build_kernel(&[0u8; 16], l.clone(), 32);
        let b = GATHER.build_kernel(b"completely other", l.clone(), 32);
        assert_eq!(a.trace(0), b.trace(0), "key must not influence the trace");
        assert_eq!(a.attack_text(), &l[..]);
        assert!(!GATHER.theory_comparable());
        assert_eq!(GATHER.attacked_subkey(b"any key at all!!"), [0u8; 16]);
    }

    #[test]
    fn whitening_workloads_are_theory_comparable() {
        for name in ["aes", "present80", "gift64", "rectangle"] {
            assert!(find(name).unwrap().theory_comparable(), "{name}");
        }
    }
}
