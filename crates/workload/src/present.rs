//! PRESENT-80 (Bogdanov et al., CHES 2007): 64-bit block, 80-bit key,
//! 31 S-box/pLayer rounds plus a final key addition.
//!
//! Beyond encryption, the core exports the *byte-table view* the GPU
//! kernel model needs: each round computes
//! `state' = T0[b0] ^ T1[b1] ^ … ^ T7[b7]` where `b_j` is byte `j` of
//! `state ^ K_i` and `T_j[v] = pLayer(sBox(v) placed at byte j)` — the
//! standard software trick of folding sBoxLayer + pLayer into eight
//! 256-entry `u64` tables. [`Present80::round_index_bytes`] returns
//! exactly those per-round table indices, so the kernel's memory trace
//! is the trace of a real table-based implementation. Round 1's indices
//! are `pt_j ^ K1_j`: the byte-local key dependence the coalescing
//! attack targets.

/// The PRESENT 4-bit S-box.
pub const PRESENT_SBOX: [u8; 16] = [
    0xC, 0x5, 0x6, 0xB, 0x9, 0x0, 0xA, 0xD, 0x3, 0xE, 0xF, 0x8, 0x4, 0x7, 0x1, 0x2,
];

const ROUNDS: usize = 31;
const KEY_MASK: u128 = (1u128 << 80) - 1;

fn inv_sbox() -> [u8; 16] {
    let mut inv = [0u8; 16];
    let mut i = 0;
    while i < 16 {
        inv[PRESENT_SBOX[i] as usize] = i as u8;
        i += 1;
    }
    inv
}

/// Bit permutation: bit `i` of the state moves to `P(i) = 16·i mod 63`
/// (bit 63 is fixed), bit 0 being the least significant.
fn p_layer(x: u64) -> u64 {
    let mut out = 0u64;
    for i in 0..63 {
        out |= ((x >> i) & 1) << ((i * 16) % 63);
    }
    out | (x & (1 << 63))
}

fn inv_p_layer(x: u64) -> u64 {
    let mut out = 0u64;
    for i in 0..63 {
        out |= ((x >> ((i * 16) % 63)) & 1) << i;
    }
    out | (x & (1 << 63))
}

fn sbox_layer(x: u64) -> u64 {
    let mut out = 0u64;
    for n in 0..16 {
        out |= u64::from(PRESENT_SBOX[((x >> (4 * n)) & 0xF) as usize]) << (4 * n);
    }
    out
}

fn inv_sbox_layer(x: u64) -> u64 {
    let inv = inv_sbox();
    let mut out = 0u64;
    for n in 0..16 {
        out |= u64::from(inv[((x >> (4 * n)) & 0xF) as usize]) << (4 * n);
    }
    out
}

/// PRESENT-80 with its 32 precomputed round keys.
#[derive(Debug, Clone)]
pub struct Present80 {
    round_keys: [u64; 32],
}

impl Present80 {
    /// Expands a 10-byte (80-bit) key, `key[0]` most significant.
    pub fn new(key: &[u8; 10]) -> Self {
        let mut reg: u128 = 0;
        for &b in key {
            reg = (reg << 8) | u128::from(b);
        }
        let mut round_keys = [0u64; 32];
        for (i, rk) in round_keys.iter_mut().enumerate() {
            *rk = (reg >> 16) as u64;
            // Update for the next round key: rotate left 61 over 80
            // bits, S-box the top nibble, XOR the round counter into
            // bits 19..15.
            reg = ((reg << 61) | (reg >> 19)) & KEY_MASK;
            let nib = ((reg >> 76) & 0xF) as usize;
            reg = (reg & !(0xFu128 << 76)) | (u128::from(PRESENT_SBOX[nib]) << 76);
            reg ^= ((i as u128) + 1) << 15;
        }
        Present80 { round_keys }
    }

    /// The 32 round keys (K1..K32), leftmost 64 bits of the register.
    pub fn round_keys(&self) -> &[u64; 32] {
        &self.round_keys
    }

    /// Round-1 whitening bytes (big-endian K1) — the byte subkey the
    /// coalescing attack recovers, equal to the first 8 key bytes.
    pub fn whitening(&self) -> [u8; 8] {
        self.round_keys[0].to_be_bytes()
    }

    /// Encrypts one 64-bit block (big-endian byte order).
    pub fn encrypt8(&self, pt: [u8; 8]) -> [u8; 8] {
        let mut s = u64::from_be_bytes(pt);
        for i in 0..ROUNDS {
            s = p_layer(sbox_layer(s ^ self.round_keys[i]));
        }
        (s ^ self.round_keys[31]).to_be_bytes()
    }

    /// Decrypts one 64-bit block (round-trip check only).
    pub fn decrypt8(&self, ct: [u8; 8]) -> [u8; 8] {
        let mut s = u64::from_be_bytes(ct) ^ self.round_keys[31];
        for i in (0..ROUNDS).rev() {
            s = inv_sbox_layer(inv_p_layer(s)) ^ self.round_keys[i];
        }
        s.to_be_bytes()
    }

    /// Per-round byte-table indices for one plaintext: entry `r` holds
    /// the eight lookup indices of round `r + 1`, i.e. the big-endian
    /// bytes of `state ^ K_{r+1}`. Entry 0 is `pt ^ K1` byte for byte.
    pub fn round_index_bytes(&self, pt: [u8; 8]) -> Vec<[u8; 8]> {
        let mut out = Vec::with_capacity(ROUNDS);
        let mut s = u64::from_be_bytes(pt);
        for i in 0..ROUNDS {
            let keyed = s ^ self.round_keys[i];
            out.push(keyed.to_be_bytes());
            s = p_layer(sbox_layer(keyed));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex8(s: &str) -> [u8; 8] {
        u64::from_str_radix(s, 16).expect("hex").to_be_bytes()
    }

    /// The four published test vectors from the CHES 2007 paper
    /// (Appendix, Table: test vectors for PRESENT-80).
    #[test]
    fn ches_2007_published_vectors() {
        let cases: [([u8; 10], [u8; 8], &str); 4] = [
            ([0x00; 10], [0x00; 8], "5579C1387B228445"),
            ([0xFF; 10], [0x00; 8], "E72C46C0F5945049"),
            ([0x00; 10], [0xFF; 8], "A112FFC72F68417B"),
            ([0xFF; 10], [0xFF; 8], "3333DCD3213210D2"),
        ];
        for (key, pt, ct) in cases {
            let cipher = Present80::new(&key);
            assert_eq!(cipher.encrypt8(pt), hex8(ct), "key {key:02x?} pt {pt:02x?}");
            assert_eq!(cipher.decrypt8(hex8(ct)), pt);
        }
    }

    #[test]
    fn decrypt_round_trips_arbitrary_blocks() {
        let cipher = Present80::new(b"presentKEY");
        for i in 0..32u64 {
            let pt = (i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).to_be_bytes();
            assert_eq!(cipher.decrypt8(cipher.encrypt8(pt)), pt);
        }
    }

    #[test]
    fn p_layer_is_a_self_inverse_pair() {
        for x in [0u64, u64::MAX, 0x0123_4567_89AB_CDEF, 1 << 63] {
            assert_eq!(inv_p_layer(p_layer(x)), x);
            assert_eq!(p_layer(inv_p_layer(x)), x);
        }
        // Spec anchors: P(0)=0, P(1)=16, P(4)=1, P(63)=63.
        assert_eq!(p_layer(1), 1);
        assert_eq!(p_layer(1 << 1), 1 << 16);
        assert_eq!(p_layer(1 << 4), 1 << 1);
        assert_eq!(p_layer(1 << 63), 1 << 63);
    }

    #[test]
    fn sbox_is_a_bijection() {
        let mut seen = [false; 16];
        for v in PRESENT_SBOX {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
    }

    #[test]
    fn round_indices_start_at_whitened_plaintext_and_rebuild_the_cipher() {
        let cipher = Present80::new(b"0123456789");
        let pt = *b"abcdefgh";
        let idx = cipher.round_index_bytes(pt);
        assert_eq!(idx.len(), 31);
        let w = cipher.whitening();
        for j in 0..8 {
            assert_eq!(idx[0][j], pt[j] ^ w[j], "round 1 is byte-local in the key");
        }
        // Replaying the table view reproduces the ciphertext: apply
        // sbox+player to each recorded keyed state and compare ends.
        let mut s = u64::from_be_bytes(pt);
        for (i, bytes) in idx.iter().enumerate() {
            assert_eq!(s ^ cipher.round_keys()[i], u64::from_be_bytes(*bytes));
            s = p_layer(sbox_layer(u64::from_be_bytes(*bytes)));
        }
        assert_eq!(
            (s ^ cipher.round_keys()[31]).to_be_bytes(),
            cipher.encrypt8(pt)
        );
    }
}
