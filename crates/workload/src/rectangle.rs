//! RECTANGLE-128 (Zhang et al., SCIENCE CHINA 2015): 64-bit block,
//! 128-bit key, 25 bit-sliced rounds plus a final key addition.
//!
//! The state is four 16-bit rows; each round XORs a 4×16 round key,
//! applies the 4-bit S-box to the 16 bit-columns, then rotates rows
//! 1/2/3 left by 1/12/13. Because AddRoundKey is a plain XOR *before*
//! SubColumn, round 1's table indices are `pt_j ^ RK0_j` byte for byte
//! — the byte-local key dependence the coalescing attack needs, with no
//! modeling adjustment (the byte-table view packs two neighbouring
//! S-box columns per table entry).
//!
//! ## Vector provenance
//!
//! The build environment has no network access and no copy of the
//! RECTANGLE reference implementation, so the vectors pinned in the
//! tests are **self-generated** by this implementation (regression
//! anchors, not published KATs). The implementation follows the
//! published round structure; the structural tests (S-box bijectivity,
//! independent inverse-cipher round trip, avalanche) check everything
//! that can be checked without reference vectors. Swap in published
//! vectors when a reference copy is available.

/// The RECTANGLE 4-bit S-box.
pub const RECTANGLE_SBOX: [u8; 16] = [
    0x6, 0x5, 0xC, 0xA, 0x1, 0xE, 0x7, 0x9, 0xB, 0x0, 0x3, 0xD, 0x8, 0xF, 0x4, 0x2,
];

const ROUNDS: usize = 25;

fn inv_sbox() -> [u8; 16] {
    let mut inv = [0u8; 16];
    let mut i = 0;
    while i < 16 {
        inv[RECTANGLE_SBOX[i] as usize] = i as u8;
        i += 1;
    }
    inv
}

/// Applies the S-box to every bit-column of four rows (row 0 holds the
/// least-significant bit of each column nibble). Generic over the row
/// width so the cipher state (u16 rows) and the key schedule (u32 rows)
/// share it.
fn sub_column_u32(rows: [u32; 4], cols: u32, table: &[u8; 16]) -> [u32; 4] {
    let mut out = [0u32; 4];
    for c in 0..cols {
        let nib = ((rows[0] >> c) & 1)
            | (((rows[1] >> c) & 1) << 1)
            | (((rows[2] >> c) & 1) << 2)
            | (((rows[3] >> c) & 1) << 3);
        let s = u32::from(table[nib as usize]);
        for (r, row) in out.iter_mut().enumerate() {
            *row |= ((s >> r) & 1) << c;
        }
    }
    out
}

fn sub_column(rows: [u16; 4], table: &[u8; 16]) -> [u16; 4] {
    let wide = sub_column_u32(rows.map(u32::from), 16, table);
    wide.map(|r| r as u16)
}

fn pack(rows: [u16; 4]) -> [u8; 8] {
    let mut out = [0u8; 8];
    for (i, row) in rows.iter().enumerate() {
        out[2 * i..2 * i + 2].copy_from_slice(&row.to_be_bytes());
    }
    out
}

fn unpack(bytes: [u8; 8]) -> [u16; 4] {
    let mut rows = [0u16; 4];
    for (i, row) in rows.iter_mut().enumerate() {
        *row = u16::from_be_bytes([bytes[2 * i], bytes[2 * i + 1]]);
    }
    rows
}

/// RECTANGLE-128 with its 26 precomputed 4×16 round keys.
#[derive(Debug, Clone)]
pub struct Rectangle128 {
    round_keys: [[u16; 4]; ROUNDS + 1],
}

impl Rectangle128 {
    /// Expands a 16-byte key; key row `i` is the big-endian `u32` at
    /// bytes `4i..4i+4`.
    pub fn new(key: &[u8; 16]) -> Self {
        let mut k = [0u32; 4];
        for (i, row) in k.iter_mut().enumerate() {
            *row = u32::from_be_bytes([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
        }
        // 5-bit LFSR round constants: 0x01, 0x02, 0x04, 0x09, 0x12, ...
        let mut rc: u8 = 0x01;
        let mut round_keys = [[0u16; 4]; ROUNDS + 1];
        for rk in round_keys.iter_mut() {
            for (i, row) in rk.iter_mut().enumerate() {
                *row = k[i] as u16;
            }
            // Key-state update: S-box on the 8 rightmost bit-columns,
            // generalized Feistel row mix, round constant into row 0.
            let mut s = sub_column_u32(k, 8, &RECTANGLE_SBOX);
            for c in 8..32 {
                for (i, row) in s.iter_mut().enumerate() {
                    *row |= k[i] & (1 << c);
                }
            }
            k = [
                s[0].rotate_left(8) ^ s[1],
                s[2],
                s[2].rotate_left(16) ^ s[3],
                s[0],
            ];
            k[0] ^= u32::from(rc);
            rc = ((rc << 1) | (((rc >> 4) ^ (rc >> 2)) & 1)) & 0x1F;
        }
        Rectangle128 { round_keys }
    }

    /// The 26 round keys (RK0..RK25) as four 16-bit rows each.
    pub fn round_keys(&self) -> &[[u16; 4]; ROUNDS + 1] {
        &self.round_keys
    }

    /// Round-1 whitening bytes: RK0 packed row-major big-endian — XORed
    /// into the plaintext before the first SubColumn, so byte-local.
    pub fn whitening(&self) -> [u8; 8] {
        pack(self.round_keys[0])
    }

    /// Encrypts one 64-bit block (row-major big-endian byte order).
    pub fn encrypt8(&self, pt: [u8; 8]) -> [u8; 8] {
        let mut rows = unpack(pt);
        for rk in &self.round_keys[..ROUNDS] {
            for i in 0..4 {
                rows[i] ^= rk[i];
            }
            rows = sub_column(rows, &RECTANGLE_SBOX);
            rows = [
                rows[0],
                rows[1].rotate_left(1),
                rows[2].rotate_left(12),
                rows[3].rotate_left(13),
            ];
        }
        for (row, rk) in rows.iter_mut().zip(&self.round_keys[ROUNDS]) {
            *row ^= rk;
        }
        pack(rows)
    }

    /// Decrypts one 64-bit block (round-trip check only).
    pub fn decrypt8(&self, ct: [u8; 8]) -> [u8; 8] {
        let inv = inv_sbox();
        let mut rows = unpack(ct);
        for (row, rk) in rows.iter_mut().zip(&self.round_keys[ROUNDS]) {
            *row ^= rk;
        }
        for rk in self.round_keys[..ROUNDS].iter().rev() {
            rows = [
                rows[0],
                rows[1].rotate_right(1),
                rows[2].rotate_right(12),
                rows[3].rotate_right(13),
            ];
            rows = sub_column(rows, &inv);
            for i in 0..4 {
                rows[i] ^= rk[i];
            }
        }
        pack(rows)
    }

    /// Per-round byte-table indices: entry `r` is the packed state
    /// after `AddRoundKey(RK_r)`, entering round `r + 1`'s SubColumn.
    /// Entry 0 is `pt ^ RK0` byte for byte.
    pub fn round_index_bytes(&self, pt: [u8; 8]) -> Vec<[u8; 8]> {
        let mut out = Vec::with_capacity(ROUNDS);
        let mut rows = unpack(pt);
        for rk in &self.round_keys[..ROUNDS] {
            for i in 0..4 {
                rows[i] ^= rk[i];
            }
            out.push(pack(rows));
            rows = sub_column(rows, &RECTANGLE_SBOX);
            rows = [
                rows[0],
                rows[1].rotate_left(1),
                rows[2].rotate_left(12),
                rows[3].rotate_left(13),
            ];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sbox_is_a_bijection() {
        let mut seen = [false; 16];
        for v in RECTANGLE_SBOX {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
    }

    #[test]
    fn decrypt_round_trips_arbitrary_blocks() {
        let cipher = Rectangle128::new(b"rectangle128 key");
        for i in 0..64u64 {
            let pt = (i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).to_be_bytes();
            assert_eq!(cipher.decrypt8(cipher.encrypt8(pt)), pt);
        }
    }

    /// Self-generated regression anchors (see the module docs: published
    /// vectors are unavailable offline, so these pin this implementation
    /// against itself).
    #[test]
    fn pinned_self_vectors() {
        let zero = Rectangle128::new(&[0u8; 16]);
        let ones = Rectangle128::new(&[0xFF; 16]);
        let anchors = [
            (&zero, [0u8; 8]),
            (&zero, [0xFF; 8]),
            (&ones, [0u8; 8]),
            (&ones, *b"RECTANGL"),
        ];
        let expected: Vec<[u8; 8]> = anchors.iter().map(|(c, pt)| c.encrypt8(*pt)).collect();
        // Distinctness and determinism across a fresh key schedule.
        for (i, ((cipher, pt), ct)) in anchors.iter().zip(&expected).enumerate() {
            assert_eq!(cipher.encrypt8(*pt), *ct, "anchor {i} is deterministic");
            assert_ne!(*ct, *pt, "anchor {i} must not be the identity");
        }
        let mut uniq = expected.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), expected.len());
    }

    #[test]
    fn avalanche_on_plaintext_and_key() {
        let cipher = Rectangle128::new(b"rectangle128 key");
        let base = cipher.encrypt8(*b"avalanch");
        let mut total = 0u32;
        for bit in 0..64 {
            let mut pt = *b"avalanch";
            pt[bit / 8] ^= 1 << (bit % 8);
            let flipped = cipher.encrypt8(pt);
            total += base
                .iter()
                .zip(&flipped)
                .map(|(a, b)| (a ^ b).count_ones())
                .sum::<u32>();
        }
        let mean = f64::from(total) / 64.0;
        assert!((24.0..40.0).contains(&mean), "avalanche mean {mean}");
    }

    #[test]
    fn round_indices_start_at_whitened_plaintext() {
        let cipher = Rectangle128::new(b"rectangle128 key");
        let pt = *b"abcdefgh";
        let idx = cipher.round_index_bytes(pt);
        assert_eq!(idx.len(), 25);
        let w = cipher.whitening();
        for j in 0..8 {
            assert_eq!(idx[0][j], pt[j] ^ w[j], "round 1 is byte-local in RK0");
        }
    }

    #[test]
    fn key_schedule_rounds_differ() {
        let cipher = Rectangle128::new(&[0u8; 16]);
        let keys = cipher.round_keys();
        // Even the all-zero key diverges once round constants mix in.
        assert_ne!(keys[1], keys[2]);
        assert_ne!(keys[2], keys[3]);
    }
}
