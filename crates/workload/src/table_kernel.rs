//! A generic GPU trace model for table-based block-cipher kernels.
//!
//! Mirrors the AES kernel's instruction-stream shape (`rcoal-aes`):
//! one thread per line, lock-step SIMT, an input load, `rounds` rounds
//! of [`LOADS_PER_ROUND`] table lookups with interleaved ALU work, and
//! an output store. The *vulnerable* round — the one whose table
//! indices are a byte-local function of attacker-observable text — is
//! round 1, tagged with the same per-byte tags
//! (`LAST_ROUND_TAG_BASE + j`) the AES kernel gives its last round, so
//! every downstream consumer (per-byte access stats, selective
//! policies, the audit) works unchanged.

use crate::WorkloadKernel;
use rcoal_aes::{Block, LAST_ROUND_TAG_BASE, OUTPUT_TAG};
use rcoal_gpu_sim::{Kernel, TraceInstr, WarpTrace};

/// Table lookups per round: one per state byte of a 64-bit block.
pub const LOADS_PER_ROUND: usize = 8;

/// Base address of table 0; tables `0..8` follow at
/// `256 × entry_size` strides (matching the AES layout's table region).
pub const TABLE_BASE: u64 = 0x1_0000;

/// Base address of the input (plaintext) buffer.
pub const INPUT_BASE: u64 = 0x10_0000;

/// Base address of the output (ciphertext) buffer.
pub const OUTPUT_BASE: u64 = 0x20_0000;

/// ALU cycles between dependent lookups (same as the AES kernel).
const COMPUTE_PER_LOOKUP: u32 = 2;

/// ALU cycles of key-XOR / bookkeeping per round (same as AES).
const ROUND_OVERHEAD: u32 = 8;

/// A [`Kernel`] whose per-warp traces are generated from per-line,
/// per-round table-index bytes supplied by a cipher model.
///
/// Each line's first 8 bytes form its 64-bit block; `index_fn` maps
/// that line to one `[u8; 8]` of table indices per round (entry `r`
/// indexes round `r+1`'s lookups, one per state byte `j`, into table
/// `j`). Round 1 carries the per-byte vulnerable tags; rounds `2..`
/// cycle through the AES kernel's inner-round tags `1..=9` so
/// selective-policy tag ranges keep their meaning.
#[derive(Debug, Clone)]
pub struct TableKernel {
    lines: Vec<Block>,
    warp_size: usize,
    warp_traces: Vec<WarpTrace>,
}

impl TableKernel {
    /// Builds the kernel: `entry_size` bytes per table entry, and
    /// `index_fn(line)` returning one 8-byte index array per round.
    pub fn new(
        lines: Vec<Block>,
        warp_size: usize,
        entry_size: u64,
        index_fn: &dyn Fn(&Block) -> Vec<[u8; 8]>,
    ) -> Self {
        let warp_size = warp_size.max(1);
        let round_indices: Vec<Vec<[u8; 8]>> = lines.iter().map(index_fn).collect();
        let num_warps = lines.len().div_ceil(warp_size);
        let warp_traces = (0..num_warps)
            .map(|w| {
                let range = w * warp_size..(w * warp_size + warp_size).min(lines.len());
                build_trace(range, entry_size, &round_indices)
            })
            .collect();
        TableKernel {
            lines,
            warp_size,
            warp_traces,
        }
    }

    /// The input lines (what the attacker observes for this kernel
    /// family: a known-plaintext first-round attack).
    pub fn lines(&self) -> &[Block] {
        &self.lines
    }
}

fn build_trace(
    lines: std::ops::Range<usize>,
    entry_size: u64,
    round_indices: &[Vec<[u8; 8]>],
) -> WarpTrace {
    let rounds = lines
        .clone()
        .next()
        .map(|l| round_indices[l].len())
        .unwrap_or(0);
    let mut trace = WarpTrace::default();

    // Input load: 16 B per thread, consecutive lines.
    let input: Vec<Option<u64>> = lines
        .clone()
        .map(|l| Some(INPUT_BASE + l as u64 * 16))
        .collect();
    trace.push(TraceInstr::load_tagged(input, 0));
    trace.push(TraceInstr::compute(ROUND_OVERHEAD));

    let table_stride = 256 * entry_size;
    for r in 1..=rounds {
        // `j` indexes the inner per-load axis inside the closure over
        // lines, not `round_indices` itself, so the iterator rewrite
        // clippy suggests would walk the wrong dimension.
        #[allow(clippy::needless_range_loop)]
        for j in 0..LOADS_PER_ROUND {
            let addrs: Vec<Option<u64>> = lines
                .clone()
                .map(|l| {
                    let idx = u64::from(round_indices[l][r - 1][j]);
                    Some(TABLE_BASE + j as u64 * table_stride + idx * entry_size)
                })
                .collect();
            // Round 1 is the vulnerable (whitened) round: per-byte tags,
            // exactly like the AES last round. Inner rounds reuse the
            // AES kernel's 1..=9 tag cycle.
            let tag = if r == 1 {
                LAST_ROUND_TAG_BASE + j as u16
            } else {
                1 + ((r as u16 - 2) % 9)
            };
            trace.push(TraceInstr::load_tagged(addrs, tag));
            trace.push(TraceInstr::compute(COMPUTE_PER_LOOKUP));
        }
        trace.push(TraceInstr::compute(ROUND_OVERHEAD));
        trace.push(TraceInstr::RoundMark { round: r as u16 });
    }

    // Output store.
    let output: Vec<Option<u64>> = lines.map(|l| Some(OUTPUT_BASE + l as u64 * 16)).collect();
    trace.push(TraceInstr::load_tagged(output, OUTPUT_TAG));
    trace
}

impl Kernel for TableKernel {
    fn num_warps(&self) -> usize {
        self.lines.len().div_ceil(self.warp_size)
    }

    fn warp_width(&self, warp_id: usize) -> usize {
        let start = warp_id * self.warp_size;
        (start + self.warp_size).min(self.lines.len()) - start.min(self.lines.len())
    }

    fn trace(&self, warp_id: usize) -> &WarpTrace {
        &self.warp_traces[warp_id]
    }
}

impl WorkloadKernel for TableKernel {
    fn attack_text(&self) -> &[Block] {
        &self.lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn identity_indices(rounds: usize) -> impl Fn(&Block) -> Vec<[u8; 8]> {
        move |line: &Block| {
            let mut block = [0u8; 8];
            block.copy_from_slice(&line[..8]);
            vec![block; rounds]
        }
    }

    fn lines(n: usize) -> Vec<Block> {
        (0..n)
            .map(|i| {
                let mut b = [0u8; 16];
                for (k, x) in b.iter_mut().enumerate() {
                    *x = (i * 31 + k * 7) as u8;
                }
                b
            })
            .collect()
    }

    #[test]
    fn trace_shape_mirrors_aes() {
        let f = identity_indices(31);
        let k = TableKernel::new(lines(32), 32, 8, &f);
        let t = k.trace(0);
        let loads = t
            .instrs()
            .iter()
            .filter(|i| matches!(i, TraceInstr::Load { .. }))
            .count();
        // 1 input + 31 × 8 lookups + 1 output.
        assert_eq!(loads, 250);
        let marks: Vec<u16> = t
            .instrs()
            .iter()
            .filter_map(|i| match i {
                TraceInstr::RoundMark { round } => Some(*round),
                _ => None,
            })
            .collect();
        assert_eq!(marks, (1..=31).collect::<Vec<_>>());
    }

    #[test]
    fn round_one_carries_per_byte_vulnerable_tags() {
        let f = identity_indices(25);
        let k = TableKernel::new(lines(32), 32, 2, &f);
        let tags: Vec<u16> = k
            .trace(0)
            .instrs()
            .iter()
            .filter_map(|i| match i {
                TraceInstr::Load { tag, .. } if *tag >= LAST_ROUND_TAG_BASE => Some(*tag),
                _ => None,
            })
            .collect();
        let expect: Vec<u16> = (0..8).map(|j| LAST_ROUND_TAG_BASE + j).collect();
        assert_eq!(tags, expect, "only round 1 is vulnerable");
    }

    #[test]
    fn inner_round_tags_stay_in_the_aes_cycle() {
        let f = identity_indices(31);
        let k = TableKernel::new(lines(32), 32, 8, &f);
        for instr in k.trace(0).instrs() {
            if let TraceInstr::Load { tag, .. } = instr {
                assert!(
                    *tag == 0
                        || *tag == OUTPUT_TAG
                        || (1..=9).contains(tag)
                        || (LAST_ROUND_TAG_BASE..LAST_ROUND_TAG_BASE + 8).contains(tag),
                    "tag {tag} outside the AES tag vocabulary"
                );
            }
        }
    }

    #[test]
    fn addresses_land_in_per_byte_tables() {
        let f = identity_indices(3);
        let k = TableKernel::new(lines(32), 32, 8, &f);
        for instr in k.trace(0).instrs() {
            if let TraceInstr::Load { addrs, tag } = instr {
                if *tag >= LAST_ROUND_TAG_BASE {
                    let j = u64::from(tag - LAST_ROUND_TAG_BASE);
                    let lo = TABLE_BASE + j * 2048;
                    for a in addrs.iter().flatten() {
                        assert!((lo..lo + 2048).contains(a), "addr {a:#x} outside table {j}");
                    }
                }
            }
        }
    }

    #[test]
    fn partial_warps_partition_like_aes() {
        let f = identity_indices(2);
        let k = TableKernel::new(lines(40), 32, 4, &f);
        assert_eq!(k.num_warps(), 2);
        assert_eq!(k.warp_width(0), 32);
        assert_eq!(k.warp_width(1), 8);
        if let TraceInstr::Load { addrs, .. } = &k.trace(1).instrs()[0] {
            assert_eq!(addrs.len(), 8);
        } else {
            panic!("first instruction should be the input load");
        }
    }

    #[test]
    fn attack_text_is_the_plaintext_lines() {
        let f = identity_indices(2);
        let l = lines(8);
        let k = TableKernel::new(l.clone(), 32, 4, &f);
        assert_eq!(k.attack_text(), &l[..]);
        assert_eq!(k.lines(), &l[..]);
    }
}
