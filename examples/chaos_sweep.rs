//! Crash-safe sweeps under host-level chaos: supervised workers,
//! journaled persistence, and kill-and-resume.
//!
//! ```text
//! cargo run --release --example chaos_sweep
//! ```
//!
//! PR 1 injected faults into the *simulated* GPU; this demo injects
//! them into the *host* that runs it: worker panics, failed disk
//! writes, and payload corruption, all from one seeded [`ChaosPlan`].
//! The supervised sweep path retries panicking workers, quarantines
//! the incurable, counts every lost disk write, and journals each
//! completed run as it finishes — so a killed process resumes where it
//! crashed, serving finished work bit-identically from the store.

use rcoal::prelude::*;
use rcoal_experiments::SweepRunner;
use rcoal_scenario::{ChaosPlan, Scenario};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let store = std::env::temp_dir().join(format!("rcoal-chaos-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store);

    // A small grid: 3 policies x 4 seeds, functional-only for speed.
    let mut scenarios = Vec::new();
    for policy in [
        CoalescingPolicy::Baseline,
        CoalescingPolicy::fss(8)?,
        CoalescingPolicy::rss_rts(4)?,
    ] {
        for seed in 0..4u64 {
            scenarios.push(
                Scenario::new(policy, 4, 32)
                    .with_seed(0xc0de + seed)
                    .functional_only(),
            );
        }
    }

    // Phase 1: a hostile host. Roughly every 3rd worker op panics and
    // every 4th disk write fails; the supervisor retries panics (fresh
    // ops, so retries usually land) and the store counts every loss.
    println!("phase 1: sweep under chaos (panic period 3, io-failure period 4)");
    let chaos = ChaosPlan::seeded(0xbad).with_panics(3).with_io_failures(4);
    let runner = SweepRunner::with_store(&store)?.with_chaos(chaos);
    // The injected panics are the point of the demo; keep their
    // default-hook spew out of the output (the supervisor still sees
    // and reports every one).
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let outcome = runner.run_scenarios_supervised(&scenarios);
    std::panic::set_hook(default_hook);
    let stats = runner.cache_stats();
    println!(
        "  {} of {} runs completed, {} quarantined, {} retried",
        outcome.completed(),
        scenarios.len(),
        outcome.quarantined.len(),
        outcome.report.retried,
    );
    println!(
        "  store: {} persisted, {} writes failed (counted, not swallowed)",
        stats.disk_stores, stats.write_failures
    );
    for q in &outcome.quarantined {
        println!("  quarantined {:016x}: {}", q.hash, q.reason);
    }
    for event in runner.take_cache_events() {
        println!("  [telemetry] {}", event.to_line());
    }
    drop(runner);

    // Phase 2: the "next process" — same store, no chaos. The journal
    // replays what phase 1 completed; only lost or quarantined work
    // re-simulates, and every replayed row is bit-identical.
    println!("\nphase 2: resume from the journal, chaos disarmed");
    let runner = SweepRunner::with_store(&store)?;
    let resumed = runner.run_scenarios_supervised(&scenarios);
    assert!(resumed.is_complete(), "clean host, complete sweep");
    println!(
        "  {} runs served: {} replayed from the journal, {} re-simulated",
        resumed.rows.len(),
        resumed.report.journal_replayed,
        resumed.report.launched,
    );
    for (row, prev) in resumed.rows.iter().zip(&outcome.rows) {
        if let (Some(now), Some(before)) = (row.as_ref(), prev.as_ref()) {
            assert_eq!(now, before, "replayed results are bit-identical");
        }
    }
    println!("  replayed rows verified bit-identical to phase 1");

    // Phase 3: audit the store like CI does (`rcoal-cli cache verify`).
    let audit = runner.verify_store()?;
    println!(
        "\nphase 3: store audit — {} entries, {} ok, {} corrupt",
        audit.entries, audit.ok, audit.corrupt
    );

    std::fs::remove_dir_all(&store)?;
    Ok(())
}
