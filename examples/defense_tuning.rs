//! Defense tuning: sweep the RCoal mechanisms and subwarp counts, attack
//! each configuration with its corresponding attack, and rank the
//! configurations by RCoal_Score for a security-oriented and a
//! performance-oriented system (paper §VI-C, Figure 17).
//!
//! Run with: `cargo run --release --example defense_tuning`

use rcoal::prelude::*;
use rcoal_experiments::figures::{fig15_16_comparison, fig17_rcoal_score};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 100;
    println!("simulating 4 mechanisms x M in {{2,4,8,16}} with {n} plaintexts each ...\n");
    let comparison = fig15_16_comparison(n, 7)?;

    println!(
        "{:<8} {:>3} | {:>9} {:>10} | {:>12} {:>12}",
        "mech", "M", "avg corr", "norm time", "score(a=b=1)", "score(b=20)"
    );
    println!("{}", "-".repeat(64));
    let scores = fig17_rcoal_score(&comparison)?;
    for score in &scores {
        let sec = comparison
            .security
            .iter()
            .find(|s| s.mechanism == score.mechanism && s.m == score.m)
            .expect("aligned rows");
        let perf = comparison
            .performance
            .iter()
            .find(|p| p.mechanism == score.mechanism && p.m == score.m)
            .expect("aligned rows");
        println!(
            "{:<8} {:>3} | {:>9.3} {:>10.3} | {:>12.1} {:>12.3}",
            score.mechanism,
            score.m,
            sec.avg_correct_corr,
            perf.normalized_time,
            score.security_oriented,
            score.performance_oriented,
        );
    }

    let best_sec = scores
        .iter()
        .max_by(|a, b| a.security_oriented.total_cmp(&b.security_oriented))
        .expect("non-empty sweep");
    let best_perf = scores
        .iter()
        .max_by(|a, b| a.performance_oriented.total_cmp(&b.performance_oriented))
        .expect("non-empty sweep");
    println!(
        "\nsecurity-oriented pick   : {} with M={}",
        best_sec.mechanism, best_sec.m
    );
    println!(
        "performance-oriented pick: {} with M={}",
        best_perf.mechanism, best_perf.m
    );
    println!("\n(the paper lands on FSS+RTS at M in {{8,16}} for security-oriented systems and");
    println!("RSS+RTS for performance-oriented systems; exact picks vary with sample noise)");

    // Theoretical cross-check from the analytical model.
    let model = SecurityModel::default();
    println!(
        "\nanalytical rho at M=16: FSS+RTS={:.3}, RSS+RTS={:.3} (Table II: 0.03 / 0.05)",
        model.rho(Mechanism::FssRts, 16),
        model.rho(Mechanism::RssRts, 16)
    );
    Ok(())
}
