//! Fault injection and typed-error demo: runs the baseline attack under
//! degraded hardware and shows the watchdog catching a livelock.
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use rcoal::prelude::*;
use rcoal_attack::attenuated_correlation;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 200;
    let seed = 0xfa_u64;

    // Clean victim: the paper's strong attacker reads last-round cycles.
    let clean = ExperimentConfig::new(CoalescingPolicy::Baseline, n, 32)
        .with_seed(seed)
        .run()?;
    let correct = clean.true_last_round_key()[0];
    let attack = Attack::baseline(32);
    let corr = |data: &ExperimentData| -> Result<f64, Box<dyn std::error::Error>> {
        let samples = data.attack_samples(TimingSource::LastRoundCycles)?;
        Ok(attack.recover_byte(&samples, 0)?.correlation_of(correct))
    };
    let variance = |xs: &[u64]| {
        let m = xs.iter().sum::<u64>() as f64 / xs.len() as f64;
        xs.iter().map(|&x| (x as f64 - m).powi(2)).sum::<f64>() / xs.len() as f64
    };
    let rho_clean = corr(&clean)?;
    let cycles = clean.last_round_cycles.as_ref().expect("timing run");
    let v = variance(cycles);
    println!(
        "byte-0 attack on a healthy GPU: corr {rho_clean:+.3} (signal sd {:.1})\n",
        v.sqrt()
    );

    // Degraded DRAM: per-reply half-normal jitter. Faults perturb timing
    // only, so the channel itself is untouched -- the attacker's
    // *measurement* degrades, following rho' = rho * sqrt(v/(v+sigma^2)).
    println!("under DRAM reply jitter (Gaussian, per-reply sigma in cycles):");
    println!(
        "{:>6} | {:>9} | {:>13} | {:>13}",
        "sigma", "sigma_eff", "measured corr", "Eq.4 predict"
    );
    for sigma in [2.0, 8.0, 32.0] {
        let faults = FaultPlan::seeded(7).with_jitter(ReplyJitter::Gaussian { sigma });
        let noisy = ExperimentConfig::new(CoalescingPolicy::Baseline, n, 32)
            .with_seed(seed)
            .with_faults(faults)
            .run()?;
        let noisy_cycles = noisy.last_round_cycles.as_ref().expect("timing run");
        let sigma_eff = (variance(noisy_cycles) - v).max(0.0).sqrt();
        let measured = corr(&noisy)?;
        let predicted = attenuated_correlation(rho_clean, v, sigma_eff)?;
        println!("{sigma:>6.0} | {sigma_eff:>9.1} | {measured:>+13.3} | {predicted:>+13.3}");
    }

    // A permanently lost reply (100% drop, zero retries) wedges its warp;
    // the watchdog reports a typed diagnostic instead of spinning.
    println!("\nwith a fault plan dropping every reply (0 retries):");
    let wedged = ExperimentConfig::new(CoalescingPolicy::Baseline, 1, 32)
        .with_seed(seed)
        .with_faults(FaultPlan::seeded(3).with_drop(1.0, 0))
        .run();
    match wedged {
        Err(e) => println!("  typed error: {e}"),
        Ok(_) => println!("  unexpectedly completed"),
    }
    Ok(())
}
