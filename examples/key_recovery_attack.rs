//! Full correlation timing attack against the baseline (vulnerable) GPU:
//! collect ciphertexts + last-round timings from the simulated encryption
//! server, then recover the AES-128 last-round key byte by byte.
//!
//! Run with: `cargo run --release --example key_recovery_attack`
//! (Pass a sample count as the first argument; default 400.)

use rcoal::prelude::*;

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let samples: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(400);

    // The victim: a remote GPU AES server with stock coalescing. The
    // attacker chooses the plaintext stream and observes ciphertexts and
    // timing. (The experiment driver holds the key; the attack never
    // reads it — it is used only to grade the result.)
    let secret_key = *b"an actual secret";
    println!("collecting {samples} timing samples from the victim GPU ...");
    let data = ExperimentConfig::new(CoalescingPolicy::Baseline, samples, 32)
        .with_key(secret_key)
        .with_seed(2024)
        .run()?;
    let true_k10 = data.true_last_round_key();

    println!("running the correlation attack (256 guesses x 16 bytes) ...\n");
    let attack = Attack::baseline(32);
    let recovery = attack.recover_key(&data.attack_samples(TimingSource::LastRoundCycles)?)?;

    println!("byte | guessed | actual | corr(guess) | rank of actual");
    println!("-----+---------+--------+-------------+---------------");
    for (j, byte) in recovery.bytes.iter().enumerate() {
        let ok = if byte.best_guess == true_k10[j] {
            ""
        } else {
            "  <- miss"
        };
        println!(
            "  {:2} |    0x{:02x} |   0x{:02x} |      {:+.3} | {:3}{}",
            j,
            byte.best_guess,
            true_k10[j],
            byte.correlation_of(true_k10[j]),
            byte.rank_of(true_k10[j]),
            ok,
        );
    }

    let outcome = recovery.outcome(&true_k10);
    println!(
        "\nrecovered {}/16 last-round key bytes (avg corr of correct guess: {:.3})",
        outcome.num_correct, outcome.avg_correct_correlation
    );
    if outcome.complete() {
        // The paper's final step (§II-C): key expansion is invertible,
        // so the last round key yields the original private key.
        let master = Aes128::from_last_round_key(&recovery.recovered_key()).master_key();
        println!("complete break: inverting the key schedule ...");
        println!("  recovered master key: {}", hex(&master));
        println!("  actual    master key: {}", hex(&secret_key));
        assert_eq!(master, secret_key);
    } else {
        println!("partial break: the remaining bytes fall with more samples (try a larger N).");
    }
    Ok(())
}
