//! Audit the leakage channels side by side: run the same workload on
//! the vulnerable baseline coalescer and under RSS(8)+RTS, and print the
//! full [`LeakageReport`] for each — TVLA t-statistics, bias-corrected
//! mutual information, the empirical normalized sample count, and the
//! cross-check against `rcoal-theory`'s closed form — plus the per-stage
//! channels (DRAM row locality, interconnect serialization, warp finish
//! spread) the RCoal paper names as secondary timing-signal sources.
//!
//! Run with: `cargo run --release --example profile_leakage`

use rcoal::prelude::*;

fn audited(
    policy: CoalescingPolicy,
    n: usize,
) -> Result<(ExperimentData, LeakageReport), ExperimentError> {
    let (data, report) = ExperimentConfig::new(policy, n, 32)
        .with_seed(23)
        .with_telemetry(TelemetrySpec::profile_only())
        .with_audit(AuditSpec::new())
        .run_audited()?;
    let report = report.ok_or_else(|| {
        ExperimentError::Config("audit spec was set, report must exist".to_string())
    })?;
    Ok((data, report))
}

fn verdict(leaky: bool) -> &'static str {
    if leaky {
        "LEAKY"
    } else {
        "quiet"
    }
}

fn describe(data: &ExperimentData, report: &LeakageReport) {
    println!("{} ({} samples):", report.policy, report.samples);
    println!(
        "  tvla t-test     |t| = {:>6.2} vs threshold {}  -> {}",
        report.timing.welch.t.abs(),
        report.spec.t_threshold,
        verdict(report.timing.welch.exceeds(report.spec.t_threshold)),
    );
    println!(
        "  mutual info     {:.4} bits corrected ({:.4} raw - {:.4} bias), floor {}",
        report.timing.mi.corrected_bits,
        report.timing.mi.bits,
        report.timing.mi.bias_bits,
        report.spec.mi_floor_bits,
    );
    println!(
        "  empirical       rho = {:+.4}, S ~ {:.0} samples/byte",
        report.empirical_rho, report.empirical_s
    );
    match &report.theory {
        Some(t) => println!(
            "  theory          {}(m={}) predicts rho = {:.4} (S ~ {:.0}) -> {}",
            t.mechanism,
            t.m,
            t.predicted_rho,
            t.predicted_s,
            if t.ok { "agrees" } else { "DISAGREES" }
        ),
        None => println!("  theory          no closed form for this policy/channel"),
    }
    let q = &report.quantiles;
    println!(
        "  channel         mean {:.2}, p50 {}, p95 {}, p99 {} accesses (n = {})",
        q.mean, q.p50, q.p95, q.p99, q.count
    );
    // The same quantile accessors work on any telemetry histogram; the
    // memory-latency tail is the paper's canonical secondary channel.
    if let Some(tel) = &data.telemetry {
        let lat = &tel.profile.mem_latency;
        println!(
            "  mem latency     p50 {} / p95 {} / p99 {} cycles over {} loads",
            lat.p50().unwrap_or(0),
            lat.p95().unwrap_or(0),
            lat.p99().unwrap_or(0),
            lat.count()
        );
    }
    for stage in &report.stages {
        println!(
            "  stage {:<18} |t| = {:>6.2}, mi {:.4} bits -> {}",
            stage.name,
            stage.welch.t.abs(),
            stage.mi.corrected_bits,
            verdict(stage.leaky)
        );
    }
    println!("  verdict         {}\n", verdict(report.leaky));
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 160;
    println!("leakage audit, {n} plaintexts x 32 lines (seed 23)\n");

    let (base_data, base) = audited(CoalescingPolicy::Baseline, n)?;
    let (rss_data, rss) = audited(CoalescingPolicy::rss_rts(8)?, n)?;
    describe(&base_data, &base);
    describe(&rss_data, &rss);

    println!(
        "what RCoal changes: the attacker's access-count predictions decorrelate\n\
         from the clock. the baseline channel shows |t| = {:.1} with {:.2} bits of\n\
         key information; RSS(8)+RTS drives the t-statistic under the TVLA\n\
         threshold and multiplies the attacker's sample cost by ~{:.0}x\n\
         (empirical S {:.0} vs {:.0}).",
        base.timing.welch.t.abs(),
        base.timing.mi.corrected_bits,
        rss.empirical_s / base.empirical_s.max(1.0),
        rss.empirical_s,
        base.empirical_s,
    );
    println!(
        "\nthe per-stage lines show why the security argument needs the full\n\
         memory system: row locality, queueing, and warp finish spread all\n\
         shift with the randomized access stream, and the audit runs the same\n\
         two-class test on each of those secondary channels."
    );
    Ok(())
}
