//! Profile the leakage channels side by side: run the same workload on
//! the vulnerable baseline coalescer and under RSS(4), and compare what
//! the telemetry layer sees on every stage the RCoal paper names as a
//! timing-signal source — coalescer access counts, DRAM row locality and
//! queueing, interconnect serialization, and warp finish spread.
//!
//! Run with: `cargo run --release --example profile_leakage`

use rcoal::prelude::*;

fn profiled(policy: CoalescingPolicy, n: usize) -> Result<ExperimentData, ExperimentError> {
    ExperimentConfig::new(policy, n, 32)
        .with_seed(23)
        .with_telemetry(TelemetrySpec::profile_only())
        .run()
}

fn hist_line(name: &str, h: &Hist64) -> String {
    format!(
        "  {name:<22} mean {:>7.2}  min {:>4}  max {:>5}  (n = {})",
        h.mean(),
        h.min().unwrap_or(0),
        h.max().unwrap_or(0),
        h.count()
    )
}

fn describe(label: &str, data: &ExperimentData) {
    let tel = data.telemetry.as_ref().expect("telemetry was requested");
    let p = &tel.profile;
    println!("{label}");
    println!("{}", hist_line("accesses/load", &p.accesses_per_load));
    println!("{}", hist_line("accesses/subwarp", &p.accesses_per_subwarp));
    println!("{}", hist_line("lanes/access", &p.lanes_per_access));
    println!("{}", hist_line("memory latency (cyc)", &p.mem_latency));
    let hits: u64 = p.mcs.iter().map(|m| m.row_hits).sum();
    let serviced: u64 = p.mcs.iter().map(|m| m.serviced).sum();
    println!(
        "  {:<22} {:.1}% over {} reads ({} controllers)",
        "dram row-hit rate",
        if serviced == 0 {
            0.0
        } else {
            100.0 * hits as f64 / serviced as f64
        },
        serviced,
        p.mcs.len()
    );
    println!(
        "  {:<22} {} req / {} reply packets deferred",
        "icnt serialization", p.icnt_req_deferred, p.icnt_reply_deferred
    );
    println!(
        "  {:<22} {} cycles stalled; finish spread {} cycles\n",
        "sm issue", p.issue_stall_cycles, p.warp_finish_spread
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 24;
    println!("leakage-channel profile, {n} plaintexts x 32 lines (seed 23)\n");

    let base = profiled(CoalescingPolicy::Baseline, n)?;
    let rss = profiled(CoalescingPolicy::rss(4)?, n)?;
    describe("baseline coalescing (vulnerable):", &base);
    describe("RSS(4) randomized subwarps:", &rss);

    let bp = &base.telemetry.as_ref().expect("telemetry").profile;
    let rp = &rss.telemetry.as_ref().expect("telemetry").profile;
    println!(
        "what RCoal changes: the per-subwarp access distribution. baseline subwarps\n\
         coalesce a whole warp (mean {:.2} accesses/subwarp); RSS(4) splits each warp\n\
         into 4 random subwarps (mean {:.2}), so per-plaintext totals rise {:.2}x and\n\
         the attacker's access-count predictions decorrelate from the clock.",
        bp.accesses_per_subwarp.mean(),
        rp.accesses_per_subwarp.mean(),
        rss.mean_total_accesses() / base.mean_total_accesses()
    );
    println!(
        "\nsecondary channels move with it: row-hit rate and queueing shift as the\n\
         randomized access stream scatters over DRAM rows, which is why the paper's\n\
         security argument needs the full memory system, not just access counts."
    );
    Ok(())
}
