//! Quickstart: encrypt a plaintext on the simulated GPU under different
//! coalescing policies and watch the security/performance trade-off.
//!
//! Run with: `cargo run --release --example quickstart`

use rcoal::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. The coalescer itself, on the paper's Figure 2 example: four
    // threads, the middle two sharing a memory block.
    let coalescer = Coalescer::new();
    let addrs = [Some(0u64), Some(64), Some(96), Some(128)];

    let one_subwarp = SubwarpAssignment::single(4)?;
    let two_subwarps = SubwarpAssignment::in_order(&[2, 2])?;
    println!("Figure 2 worked example (4 threads, lanes 1+2 share a block):");
    println!(
        "  1 subwarp  -> {} coalesced accesses",
        coalescer.coalesce(&one_subwarp, &addrs).num_accesses()
    );
    println!(
        "  2 subwarps -> {} coalesced accesses",
        coalescer.coalesce(&two_subwarps, &addrs).num_accesses()
    );

    // --- 2. Full-system runs: AES-128 on the simulated GPU (Table I
    // configuration), 20 plaintexts of 32 lines each.
    println!("\nAES-128 on the simulated GPU (20 plaintexts x 32 lines):");
    println!(
        "  {:<18} {:>12} {:>14} {:>12}",
        "policy", "cycles", "mem accesses", "vs baseline"
    );
    let mut baseline_cycles = None;
    for policy in [
        CoalescingPolicy::Baseline,
        CoalescingPolicy::fss(4)?,
        CoalescingPolicy::rss(4)?,
        CoalescingPolicy::fss_rts(4)?,
        CoalescingPolicy::rss_rts(4)?,
        CoalescingPolicy::Disabled,
    ] {
        let data = ExperimentConfig::new(policy, 20, 32).with_seed(42).run()?;
        let cycles = data.mean_total_cycles()?;
        let base = *baseline_cycles.get_or_insert(cycles);
        println!(
            "  {:<18} {:>12.0} {:>14.0} {:>11.2}x",
            policy.to_string(),
            cycles,
            data.mean_total_accesses(),
            cycles / base
        );
    }

    // --- 3. What the defender buys: the analytical Table II.
    println!("\nAnalytical security (Table II, N=32 threads, R=16 blocks):");
    println!(
        "  {:>3} {:>8} {:>9} {:>9} {:>10} {:>10}",
        "M", "rho FSS", "FSS+RTS", "RSS+RTS", "S FSS+RTS", "S RSS+RTS"
    );
    for row in table2() {
        println!(
            "  {:>3} {:>8.2} {:>9.2} {:>9.2} {:>10.0} {:>10.0}",
            row.m, row.rho_fss, row.rho_fss_rts, row.rho_rss_rts, row.s_fss_rts, row.s_rss_rts
        );
    }
    println!("\n(S = samples needed for a successful attack, normalized to the baseline.)");
    Ok(())
}
