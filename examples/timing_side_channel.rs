//! Visualize the timing side channel itself: how the number of last-round
//! coalesced accesses moves the simulated execution time, and how the
//! randomized defenses decouple the two (paper Figures 5 and 6 in spirit).
//!
//! Run with: `cargo run --release --example timing_side_channel`

use rcoal::prelude::*;
use rcoal_attack::pearson;

fn channel_strength(
    policy: CoalescingPolicy,
    n: usize,
) -> Result<(f64, f64), Box<dyn std::error::Error>> {
    let data = ExperimentConfig::new(policy, n, 32).with_seed(11).run()?;
    let accesses: Vec<f64> = data.last_round_accesses.iter().map(|&a| a as f64).collect();
    let last: Vec<f64> = data
        .last_round_cycles
        .as_ref()
        .expect("timing run")
        .iter()
        .map(|&c| c as f64)
        .collect();
    let total: Vec<f64> = data
        .total_cycles
        .as_ref()
        .expect("timing run")
        .iter()
        .map(|&c| c as f64)
        .collect();
    Ok((pearson(&accesses, &last), pearson(&accesses, &total)))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 80;

    // --- Scatter: last-round accesses vs last-round cycles (baseline).
    let data = ExperimentConfig::new(CoalescingPolicy::Baseline, n, 32)
        .with_seed(11)
        .run()?;
    let lr_cycles = data.last_round_cycles.as_ref().expect("timing run");
    let min_a = *data.last_round_accesses.iter().min().expect("n > 0");
    let max_a = *data.last_round_accesses.iter().max().expect("n > 0");
    println!("baseline GPU: last-round accesses vs last-round cycles ({n} plaintexts)\n");
    let floor = lr_cycles.iter().copied().min().expect("n > 0") as f64;
    for bucket in min_a..=max_a {
        let times: Vec<f64> = data
            .last_round_accesses
            .iter()
            .zip(lr_cycles)
            .filter(|(&a, _)| a == bucket)
            .map(|(_, &c)| c as f64)
            .collect();
        if times.is_empty() {
            continue;
        }
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let bar = "#".repeat(1 + (mean - floor).max(0.0) as usize);
        println!(
            "  {bucket:4} accesses | {bar} {mean:.0} cycles (x{})",
            times.len()
        );
    }

    // --- Channel strength per policy: corr(accesses, time).
    println!("\nchannel strength corr(last-round accesses, cycles):");
    println!(
        "  {:<18} {:>10} {:>12}",
        "policy", "last-round", "total-time"
    );
    for policy in [
        CoalescingPolicy::Baseline,
        CoalescingPolicy::fss(8)?,
        CoalescingPolicy::rss_rts(8)?,
        CoalescingPolicy::Disabled,
    ] {
        let (lr, tot) = channel_strength(policy, n)?;
        println!("  {:<18} {:>10.3} {:>12.3}", policy.to_string(), lr, tot);
    }
    println!(
        "\nnote: the channel (accesses -> time) stays strong under every policy; what the\n\
         randomized defenses break is the attacker's ability to *predict* the access\n\
         count — run `cargo run --release --example key_recovery_attack` to see that."
    );
    Ok(())
}
