//! `rcoal-cli` — command-line front end to the RCoal reproduction.
//!
//! ```text
//! rcoal-cli table2
//! rcoal-cli simulate --policy rss-rts:4 [--plaintexts 20] [--lines 32] [--seed 7] [--selective true] [--threads N]
//! rcoal-cli attack   --policy baseline  [--samples 400] [--byte all|J] [--seed 7] [--threads N]
//! rcoal-cli score    [--samples 100] [--seed 7] [--threads N]
//! ```

use rcoal::cli::{parse_policy, parse_threads, ParsedArgs};
use rcoal::prelude::*;
use rcoal_experiments::figures::{fig15_16_comparison, fig17_rcoal_score};
use std::process::ExitCode;

const USAGE: &str = "\
rcoal-cli — randomized GPU coalescing vs. correlation timing attacks

USAGE:
  rcoal-cli table2
      Print the analytical security model (paper Table II).

  rcoal-cli simulate --policy <POLICY> [--plaintexts N] [--lines L] [--seed S] [--selective true] [--threads T]
      Encrypt N plaintexts of L lines on the simulated GPU and report
      cycles and coalesced accesses. With --selective true, only the
      last-round loads use the (randomized) policy.

  rcoal-cli attack --policy <POLICY> [--samples N] [--byte J|all] [--seed S] [--threads T]
      Deploy POLICY on the victim, collect N timing samples, run the
      corresponding correlation attack, and grade the key recovery.

  rcoal-cli score [--samples N] [--seed S] [--threads T]
      Sweep all mechanisms and print RCoal_Score rankings (Figure 17).

POLICY: baseline | disabled | fss:M | rss:M | fss-rts:M | rss-rts:M
        (M = number of subwarps, a divisor of 32 for fss variants)

THREADS: worker threads for launch sweeps and attack guess sweeps.
        Results are bit-identical for every T. Defaults to the
        RCOAL_THREADS environment variable, then the machine's
        available parallelism; --threads T overrides both (1 = run
        sequentially, 0 is rejected).";

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let args = ParsedArgs::parse(std::env::args().skip(1))?;
    match args.positional.first().map(String::as_str) {
        Some("table2") => cmd_table2(),
        Some("simulate") => cmd_simulate(&args),
        Some("attack") => cmd_attack(&args),
        Some("score") => cmd_score(&args),
        Some(other) => Err(format!("unknown command {other:?}")),
        None => {
            println!("{USAGE}");
            Ok(())
        }
    }
}

fn cmd_table2() -> Result<(), String> {
    println!("Table II (N = 32 threads, R = 16 memory blocks)");
    println!(
        "{:>3} | {:>7} {:>8} {:>8} | {:>6} {:>10} {:>10}",
        "M", "rho FSS", "FSS+RTS", "RSS+RTS", "S FSS", "S FSS+RTS", "S RSS+RTS"
    );
    for r in table2() {
        println!(
            "{:>3} | {:>7.2} {:>8.2} {:>8.2} | {:>6.0} {:>10.0} {:>10.0}",
            r.m, r.rho_fss, r.rho_fss_rts, r.rho_rss_rts, r.s_fss, r.s_fss_rts, r.s_rss_rts
        );
    }
    Ok(())
}

fn policy_from(args: &ParsedArgs) -> Result<CoalescingPolicy, String> {
    parse_policy(args.get("policy").unwrap_or("baseline"))
}

fn cmd_simulate(args: &ParsedArgs) -> Result<(), String> {
    let policy = policy_from(args)?;
    let plaintexts: usize = args.get_or("plaintexts", 20)?;
    let lines: usize = args.get_or("lines", 32)?;
    let seed: u64 = args.get_or("seed", 7)?;
    let selective: bool = args.get_or("selective", false)?;
    let threads = parse_threads(args)?;

    let mut cfg = if selective {
        ExperimentConfig::selective(policy, plaintexts, lines)
    } else {
        ExperimentConfig::new(policy, plaintexts, lines)
    };
    let mut base = ExperimentConfig::new(CoalescingPolicy::Baseline, plaintexts, lines);
    if let Some(t) = threads {
        cfg = cfg.with_threads(t);
        base = base.with_threads(t);
    }
    let data = cfg.with_seed(seed).run().map_err(|e| e.to_string())?;
    let base = base.with_seed(seed).run().map_err(|e| e.to_string())?;

    println!(
        "policy           : {policy}{}",
        if selective { " (selective, last round only)" } else { "" }
    );
    println!("plaintexts       : {plaintexts} x {lines} lines");
    let cycles = data.mean_total_cycles().map_err(|e| e.to_string())?;
    let base_cycles = base.mean_total_cycles().map_err(|e| e.to_string())?;
    println!("mean cycles      : {:.0} ({:.3}x baseline)",
        cycles, cycles / base_cycles);
    println!("mean accesses    : {:.0} ({:.3}x baseline)",
        data.mean_total_accesses(),
        data.mean_total_accesses() / base.mean_total_accesses());
    println!("last-round mean  : {:.0} cycles / {:.0} accesses",
        data.mean_last_round_cycles().map_err(|e| e.to_string())?,
        data.mean_last_round_accesses());
    Ok(())
}

fn cmd_attack(args: &ParsedArgs) -> Result<(), String> {
    let policy = policy_from(args)?;
    let samples: usize = args.get_or("samples", 400)?;
    let seed: u64 = args.get_or("seed", 7)?;
    let byte_spec = args.get("byte").unwrap_or("all").to_string();
    let threads = parse_threads(args)?;

    println!("victim policy : {policy}");
    println!("samples       : {samples} (32-line plaintexts, last-round timing)");
    let mut cfg = ExperimentConfig::new(policy, samples, 32).with_seed(seed);
    if let Some(t) = threads {
        cfg = cfg.with_threads(t);
    }
    let data = cfg.run().map_err(|e| e.to_string())?;
    let k10 = data.true_last_round_key();
    let attack = Attack::against(policy, 32)
        .with_seed(seed ^ 0xa77ac)
        .with_threads(threads);
    let samples = data
        .attack_samples(TimingSource::LastRoundCycles)
        .map_err(|e| e.to_string())?;

    if byte_spec == "all" {
        let rec = attack.recover_key(&samples).map_err(|e| e.to_string())?;
        let out = rec.outcome(&k10);
        for (j, b) in rec.bytes.iter().enumerate() {
            let hit = if b.best_guess == k10[j] { "HIT " } else { "miss" };
            println!(
                "byte {j:2}: guess 0x{:02x} actual 0x{:02x} [{hit}] corr {:+.3} rank {}",
                b.best_guess,
                k10[j],
                b.correlation_of(k10[j]),
                b.rank_of(k10[j])
            );
        }
        println!(
            "\nrecovered {}/16 bytes; avg corr(correct) = {:+.3}; avg rank = {:.1}",
            out.num_correct, out.avg_correct_correlation, out.avg_rank_of_correct
        );
        println!(
            "remaining key security: ~2^{:.1} candidate keys to enumerate",
            rcoal_attack::log2_key_rank(&rec, &k10)
        );
    } else {
        let j: usize = byte_spec
            .parse()
            .map_err(|_| format!("--byte must be 0..=15 or 'all', got {byte_spec:?}"))?;
        if j >= 16 {
            return Err("--byte must be 0..=15 or 'all'".into());
        }
        let rec = attack.recover_byte(&samples, j).map_err(|e| e.to_string())?;
        println!(
            "byte {j}: guess 0x{:02x} actual 0x{:02x} corr {:+.3} rank {}",
            rec.best_guess,
            k10[j],
            rec.correlation_of(k10[j]),
            rec.rank_of(k10[j])
        );
    }
    Ok(())
}

fn cmd_score(args: &ParsedArgs) -> Result<(), String> {
    let samples: usize = args.get_or("samples", 100)?;
    let seed: u64 = args.get_or("seed", 7)?;
    if let Some(t) = parse_threads(args)? {
        // The figure generators size their worker pools from the
        // environment; exporting here lets --threads govern the whole
        // sweep without threading a parameter through every generator.
        std::env::set_var(rcoal_parallel::THREADS_ENV, t.to_string());
    }
    println!("sweeping 4 mechanisms x M in {{2,4,8,16}} with {samples} plaintexts each ...");
    let cmp = fig15_16_comparison(samples, seed).map_err(|e| e.to_string())?;
    let mut scores = fig17_rcoal_score(&cmp).map_err(|e| e.to_string())?;
    scores.sort_by(|a, b| b.security_oriented.total_cmp(&a.security_oriented));
    println!("\nby security-oriented score (a = b = 1):");
    for s in scores.iter().take(5) {
        println!("  {:>8} M={:<2} score {:.1}", s.mechanism, s.m, s.security_oriented);
    }
    scores.sort_by(|a, b| b.performance_oriented.total_cmp(&a.performance_oriented));
    println!("by performance-oriented score (a = 1, b = 20):");
    for s in scores.iter().take(5) {
        println!("  {:>8} M={:<2} score {:.4}", s.mechanism, s.m, s.performance_oriented);
    }
    Ok(())
}
