//! `rcoal-cli` — command-line front end to the RCoal reproduction.
//!
//! ```text
//! rcoal-cli table2
//! rcoal-cli workloads
//! rcoal-cli simulate --policy rss-rts:4 [--workload W] [--plaintexts 20] [--lines 32] [--seed 7] [--selective true] [--threads N] [--trace-out F] [--metrics-out F] [--progress true]
//! rcoal-cli attack   --policy baseline  [--workload W] [--samples 400] [--byte all|J] [--seed 7] [--threads N] [--trace-out F] [--metrics-out F] [--progress true]
//! rcoal-cli score    [--samples 100] [--seed 7] [--threads N]
//! ```

use rcoal::cli::{parse_policy, parse_threads, write_artifact, ParsedArgs};
use rcoal::prelude::*;
use rcoal_experiments::engine::{decode_run, encode_run, SweepRunner};
use rcoal_experiments::figures::{fig15_16_comparison, fig17_rcoal_score};
use rcoal_scenario::json::{ObjBuilder, Value};
use rcoal_scenario::{parse_spec, ChaosPlan, RunCache};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
rcoal-cli — randomized GPU coalescing vs. correlation timing attacks

USAGE:
  rcoal-cli table2
      Print the analytical security model (paper Table II).

  rcoal-cli workloads
      List the registered table-based kernels (AES plus the PRESENT,
      GIFT, and RECTANGLE ciphers and the key-free gather control):
      table geometry, the subkey the attack sweeps, and the analytical
      model's predicted normalized sample counts S = 1/rho^2 at the
      workload's (N, R).

  rcoal-cli simulate --policy <POLICY> [--workload W] [--plaintexts N] [--lines L] [--seed S]
                     [--selective true] [--threads T]
                     [--trace-out FILE] [--metrics-out FILE] [--progress true]
      Encrypt N plaintexts of L lines on the simulated GPU and report
      cycles and coalesced accesses. With --selective true, only the
      last-round loads use the (randomized) policy.

  rcoal-cli attack --policy <POLICY> [--workload W] [--samples N] [--byte J|all] [--seed S] [--threads T]
                   [--max-samples N] [--chunk C] [--early-stop true|false]
                   [--trace-out FILE] [--metrics-out FILE] [--progress true]
      Deploy POLICY on the victim, collect N timing samples, run the
      corresponding correlation attack, and grade the subkey recovery
      (AES's 16-byte last-round key by default; see `workloads` for the
      other kernels' attacked subkeys). With --max-samples N the attack
      runs the single-pass streaming engine instead: samples are
      generated chunk by chunk (--chunk, default 4096) and fed to
      online per-guess correlators, so peak memory is independent of N
      and million-sample budgets are practical. --early-stop (default
      true) stops drawing samples once the leading guess has been
      stable across consecutive checkpoints with a margin above the
      1/sqrt(n) sampling-error band; the checkpoint trajectory (leader,
      correlation, margin) is printed as it is recorded.

  rcoal-cli score [--samples N] [--seed S] [--threads T]
      Sweep all mechanisms and print RCoal_Score rankings (Figure 17).

  rcoal-cli sweep --spec FILE --out DIR [--threads T] [--cache false] [--resume true]
                  [--chaos-seed S] [--chaos-panic-period N] [--chaos-abort-after N]
      Expand a declarative rcoal-sweep/v1 (or single rcoal-scenario/v1)
      JSON spec, run every scenario through the content-addressed run
      cache (persisted under DIR/cache), write each run result to
      DIR/results/<hash>.json, and emit DIR/index.json tying scenarios
      to results. Re-running the same spec serves everything from cache.
      With --resume true the sweep runs on the crash-safe supervised
      path: every completed run is persisted and journaled as it
      finishes, a killed sweep resumes from DIR/cache without redoing
      completed work, and failing scenarios are quarantined (reported,
      row skipped) instead of failing the sweep. The --chaos-* flags
      arm seeded fault injection (worker panics / process abort after N
      journal records) for crash testing; they imply the supervised
      path.

  rcoal-cli audit --policy <POLICY> [--workload W] [--samples N] [--lines L] [--seed S] [--byte J]
                  [--channel CH] [--threads T] [--cache DIR] [--out FILE]
                  [--gate leaky|secure] [--t-threshold X] [--mi-floor BITS]
      Run (or fetch from --cache DIR) a POLICY experiment of N samples
      (default 512) and compute its leakage verdict: a TVLA-style Welch
      t-test and a bias-corrected mutual-information estimate over the
      audited channel, the streaming attack's correlation trajectory
      with the empirical normalized sample count S = 1/rho^2, and a
      cross-check against the analytical model's prediction. CH is one
      of byte-accesses (default; the clean per-byte channel Table II
      models), last-round-accesses, last-round-cycles, total-cycles
      (cycle channels simulate timing and cost more). --out FILE writes
      the full rcoal-audit/v1 JSON report. With --gate the exit code
      becomes the verdict: --gate leaky fails (exit 1) unless the
      config is flagged leaky by BOTH instruments, --gate secure fails
      if EITHER instrument flags it — and both directions also fail on
      theory disagreement, so a blind audit cannot pass the baseline.

  rcoal-cli cache verify DIR
      Audit every rcoal-cache-entry/v1 file under DIR (checksums, hash
      and length checks) without modifying anything. Exits 1 if any
      entry is corrupt.

  rcoal-cli cache repair DIR
      Same audit, but move corrupt entries aside to .corrupt sidecar
      files so future sweeps re-simulate them cleanly.

  rcoal-cli scenario validate FILE
      Parse a scenario or sweep spec, validate every expanded scenario,
      and print their content hashes.

  rcoal-cli scenario print FILE
      Print each expanded scenario in canonical JSON (one per line) —
      the exact bytes its content hash is computed over.

  rcoal-cli conformance [--cases N] [--seed S] [--goldens DIR] [--update-goldens true]
      Run the conformance suite: differential oracles for the coalescer
      and the FR-FCFS DRAM scheduler over N random scenarios (default
      240), telemetry invariant checks, scenario round-trips, and the
      golden-master fixtures under tests/goldens/. With
      --update-goldens true (or RCOAL_UPDATE_GOLDENS=1) drifted
      fixtures are rewritten instead of failing.

POLICY: baseline | disabled | fss:M | rss:M | fss-rts:M | rss-rts:M
        (M = number of subwarps, a divisor of 32 for fss variants)

WORKLOAD: a registered kernel name — aes (default), present80, gift64,
        rectangle, or gather; `rcoal-cli workloads` prints the registry.
        Sweep specs select workloads per scenario via the \"workload\"
        field / \"workloads\" axis instead of a flag.

THREADS: worker threads for launch sweeps and attack guess sweeps.
        Results are bit-identical for every T. Defaults to the
        RCOAL_THREADS environment variable, then the machine's
        available parallelism; --threads T overrides both (1 = run
        sequentially, 0 is rejected).

TELEMETRY:
  --trace-out FILE    instrument every launch of the policy under test
                      and write its cycle-stamped event stream as JSONL
                      (one {\"launch\":i,\"cycle\":c,...} object per line;
                      deterministic for a fixed seed at any T).
  --metrics-out FILE  write an rcoal-metrics/v1 JSON snapshot: the
                      aggregate sim.* leakage profile plus host-domain
                      span.*/pool.*/attack.* wall-clock metrics.
  --progress true     print per-byte attack progress and a pool
                      utilization summary to stderr.";

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let args = ParsedArgs::parse(std::env::args().skip(1))?;
    match args.positional.first().map(String::as_str) {
        Some("table2") => cmd_table2(),
        Some("workloads") => cmd_workloads(),
        Some("simulate") => cmd_simulate(&args),
        Some("attack") => cmd_attack(&args),
        Some("audit") => cmd_audit(&args),
        Some("score") => cmd_score(&args),
        Some("sweep") => cmd_sweep(&args),
        Some("cache") => cmd_cache(&args),
        Some("scenario") => cmd_scenario(&args),
        Some("conformance") => cmd_conformance(&args),
        Some(other) => Err(format!("unknown command {other:?}")),
        None => {
            println!("{USAGE}");
            Ok(())
        }
    }
}

fn cmd_table2() -> Result<(), String> {
    println!("Table II (N = 32 threads, R = 16 memory blocks)");
    println!(
        "{:>3} | {:>7} {:>8} {:>8} | {:>6} {:>10} {:>10}",
        "M", "rho FSS", "FSS+RTS", "RSS+RTS", "S FSS", "S FSS+RTS", "S RSS+RTS"
    );
    for r in table2() {
        println!(
            "{:>3} | {:>7.2} {:>8.2} {:>8.2} | {:>6.0} {:>10.0} {:>10.0}",
            r.m, r.rho_fss, r.rho_fss_rts, r.rho_rss_rts, r.s_fss, r.s_fss_rts, r.s_rss_rts
        );
    }
    Ok(())
}

fn policy_from(args: &ParsedArgs) -> Result<CoalescingPolicy, String> {
    parse_policy(args.get("policy").unwrap_or("baseline"))
}

/// Resolves `--workload` against the registry (default `aes`).
fn workload_from(args: &ParsedArgs) -> Result<&'static dyn KernelWorkload, String> {
    let name = args.get("workload").unwrap_or("aes");
    rcoal::workload::find(name).ok_or_else(|| {
        format!(
            "unknown workload {name:?} (registered: {})",
            rcoal::workload::names()
        )
    })
}

fn cmd_workloads() -> Result<(), String> {
    println!("registered workloads (N = 32 threads per warp):");
    for workload in rcoal::workload::registry() {
        let g = workload.geometry();
        println!("\n{} — {}", workload.name(), workload.description());
        println!(
            "  geometry : R = {} blocks/table x {} table(s), {}-byte entries; \
             {} loads/round x {} rounds",
            g.table_size_r, g.tables, g.entry_bytes, g.loads_per_round, g.rounds
        );
        println!(
            "  attack   : {}-byte key, sweeps {} subkey byte(s); timing boundary after round {}",
            g.key_bytes,
            g.attack_bytes,
            workload.timing_boundary_round()
        );
        if workload.theory_comparable() {
            let model = SecurityModel::new(g.threads_per_warp, g.table_size_r);
            let fmt_s = |mech: Mechanism| -> String {
                [2usize, 4, 8, 16]
                    .iter()
                    .map(|&m| {
                        let s = model.normalized_samples(mech, m);
                        if s.is_finite() {
                            format!("{s:.0}")
                        } else {
                            "inf".to_string()
                        }
                    })
                    .collect::<Vec<_>>()
                    .join(" / ")
            };
            println!(
                "  predicted S at M=2/4/8/16: FSS {} | FSS+RTS {} | RSS+RTS {}",
                fmt_s(Mechanism::Fss),
                fmt_s(Mechanism::FssRts),
                fmt_s(Mechanism::RssRts)
            );
        } else {
            println!(
                "  theory   : key-independent control — no (N, R) prediction; \
                 audits must gate secure"
            );
        }
    }
    Ok(())
}

/// The `--trace-out` / `--metrics-out` / `--progress` trio shared by the
/// simulate and attack commands.
struct TelemetryArgs {
    trace_out: Option<String>,
    metrics_out: Option<String>,
    progress: bool,
}

impl TelemetryArgs {
    fn parse(args: &ParsedArgs) -> Result<Self, String> {
        Ok(TelemetryArgs {
            trace_out: args.get("trace-out").map(str::to_string),
            metrics_out: args.get("metrics-out").map(str::to_string),
            progress: args.get_or("progress", false)?,
        })
    }

    /// Whether any host-side instrumentation was requested.
    fn wants_any(&self) -> bool {
        self.trace_out.is_some() || self.metrics_out.is_some() || self.progress
    }

    /// Writes the event trace of an instrumented run, if requested.
    fn write_trace(&self, data: &ExperimentData) -> Result<(), String> {
        if let Some(path) = &self.trace_out {
            let tel = data
                .telemetry
                .as_ref()
                .ok_or("internal: --trace-out run collected no telemetry")?;
            write_artifact(path, &tel.trace_jsonl())?;
            println!("trace written    : {path} ({} events)", tel.num_events());
        }
        Ok(())
    }

    /// Writes the metrics snapshot, if requested.
    fn write_metrics(&self, registry: &MetricsRegistry) -> Result<(), String> {
        if let Some(path) = &self.metrics_out {
            let mut json = registry.snapshot().to_json();
            json.push('\n');
            write_artifact(path, &json)?;
            println!("metrics written  : {path}");
        }
        Ok(())
    }

    /// Prints the pool utilization summary to stderr under `--progress`.
    fn report_pool(&self, registry: &MetricsRegistry, pool: &str) {
        if !self.progress {
            return;
        }
        let snap = registry.snapshot();
        let workers = snap.gauges.get(&format!("pool.{pool}.workers")).copied();
        let permille = snap
            .gauges
            .get(&format!("pool.{pool}.utilization_permille"))
            .copied();
        let wall = snap
            .counters
            .get(&format!("pool.{pool}.wall_micros"))
            .copied();
        if let (Some(w), Some(u), Some(micros)) = (workers, permille, wall) {
            eprintln!(
                "[progress] {pool}: {w} workers, {:.1}% busy, {:.1} ms wall",
                u as f64 / 10.0,
                micros as f64 / 1000.0
            );
        }
    }
}

fn cmd_simulate(args: &ParsedArgs) -> Result<(), String> {
    let policy = policy_from(args)?;
    let workload = workload_from(args)?;
    let plaintexts: usize = args.get_or("plaintexts", 20)?;
    let lines: usize = args.get_or("lines", 32)?;
    let seed: u64 = args.get_or("seed", 7)?;
    let selective: bool = args.get_or("selective", false)?;
    let threads = parse_threads(args)?;
    let telemetry = TelemetryArgs::parse(args)?;

    let mut cfg = if selective {
        ExperimentConfig::selective(policy, plaintexts, lines)
    } else {
        ExperimentConfig::new(policy, plaintexts, lines)
    };
    cfg = cfg.with_workload(workload.name());
    let mut base = ExperimentConfig::new(CoalescingPolicy::Baseline, plaintexts, lines)
        .with_workload(workload.name());
    if let Some(t) = threads {
        cfg = cfg.with_threads(t);
        base = base.with_threads(t);
    }
    // Only the policy under test is instrumented; the baseline reference
    // run stays plain.
    let registry = MetricsRegistry::new();
    if telemetry.wants_any() {
        cfg = cfg.with_host_metrics(&registry);
    }
    if telemetry.trace_out.is_some() || telemetry.metrics_out.is_some() {
        cfg = cfg.with_telemetry(TelemetrySpec::full());
    }
    let data = cfg.with_seed(seed).run().map_err(|e| e.to_string())?;
    telemetry.report_pool(&registry, "launches");
    let base = base.with_seed(seed).run().map_err(|e| e.to_string())?;

    println!(
        "policy           : {policy}{}",
        if selective {
            " (selective, last round only)"
        } else {
            ""
        }
    );
    println!("workload         : {}", workload.name());
    println!("plaintexts       : {plaintexts} x {lines} lines");
    let cycles = data.mean_total_cycles().map_err(|e| e.to_string())?;
    let base_cycles = base.mean_total_cycles().map_err(|e| e.to_string())?;
    println!(
        "mean cycles      : {:.0} ({:.3}x baseline)",
        cycles,
        cycles / base_cycles
    );
    println!(
        "mean accesses    : {:.0} ({:.3}x baseline)",
        data.mean_total_accesses(),
        data.mean_total_accesses() / base.mean_total_accesses()
    );
    println!(
        "last-round mean  : {:.0} cycles / {:.0} accesses",
        data.mean_last_round_cycles().map_err(|e| e.to_string())?,
        data.mean_last_round_accesses()
    );
    if let Some(tel) = &data.telemetry {
        let p = &tel.profile;
        println!(
            "leakage profile  : {:.2} accesses/subwarp mean; {:.0} issue-stall cycles; finish spread {}",
            p.accesses_per_subwarp.mean(),
            p.issue_stall_cycles,
            p.warp_finish_spread
        );
        let hits: u64 = p.mcs.iter().map(|m| m.row_hits).sum();
        let serviced: u64 = p.mcs.iter().map(|m| m.serviced).sum();
        if serviced > 0 {
            println!(
                "dram row locality: {:.1}% hits over {serviced} serviced reads",
                100.0 * hits as f64 / serviced as f64
            );
        }
    }
    telemetry.write_trace(&data)?;
    telemetry.write_metrics(&registry)?;
    Ok(())
}

fn cmd_attack(args: &ParsedArgs) -> Result<(), String> {
    if args.get("max-samples").is_some() {
        return cmd_attack_stream(args);
    }
    let policy = policy_from(args)?;
    let workload = workload_from(args)?;
    let samples: usize = args.get_or("samples", 400)?;
    let seed: u64 = args.get_or("seed", 7)?;
    let byte_spec = args.get("byte").unwrap_or("all").to_string();
    let threads = parse_threads(args)?;
    let telemetry = TelemetryArgs::parse(args)?;
    let key_bytes = workload.oracle().key_bytes().min(16);

    println!("victim policy : {policy}");
    println!("workload      : {}", workload.name());
    println!("samples       : {samples} (32-line plaintexts, last-round timing)");
    let registry = MetricsRegistry::new();
    let mut cfg = ExperimentConfig::new(policy, samples, 32)
        .with_workload(workload.name())
        .with_seed(seed);
    if let Some(t) = threads {
        cfg = cfg.with_threads(t);
    }
    if telemetry.wants_any() {
        cfg = cfg.with_host_metrics(&registry);
    }
    if telemetry.trace_out.is_some() || telemetry.metrics_out.is_some() {
        cfg = cfg.with_telemetry(TelemetrySpec::full());
    }
    let data = cfg.run().map_err(|e| e.to_string())?;
    telemetry.report_pool(&registry, "launches");
    let k10 = data.attacked_subkey();
    let mut attack = Attack::against(policy, 32)
        .with_oracle(workload.oracle())
        .with_seed(seed ^ 0xa77ac)
        .with_threads(threads);
    if telemetry.wants_any() {
        attack = attack.with_metrics(&registry);
    }
    let samples = data
        .attack_samples(TimingSource::LastRoundCycles)
        .map_err(|e| e.to_string())?;
    telemetry.write_trace(&data)?;

    if byte_spec == "all" {
        let rec = if telemetry.progress {
            // Per-byte sweep so progress is visible between the
            // (expensive) 256-guess correlation scans; identical results
            // to a single recover_key call.
            let mut bytes = Vec::with_capacity(key_bytes);
            for j in 0..key_bytes {
                bytes.push(
                    attack
                        .recover_byte(&samples, j)
                        .map_err(|e| e.to_string())?,
                );
                let guesses = registry.counter("attack.guesses").get();
                let rate = registry.gauge("attack.correlations_per_sec").get();
                eprintln!(
                    "[progress] byte {:2}/{key_bytes} done ({guesses} guesses swept, ~{rate} corr/s)",
                    j + 1
                );
            }
            KeyRecovery { bytes }
        } else {
            attack.recover_key(&samples).map_err(|e| e.to_string())?
        };
        let out = rec.outcome(&k10);
        for (j, b) in rec.bytes.iter().enumerate() {
            let hit = if b.best_guess == k10[j] {
                "HIT "
            } else {
                "miss"
            };
            println!(
                "byte {j:2}: guess 0x{:02x} actual 0x{:02x} [{hit}] corr {:+.3} rank {}",
                b.best_guess,
                k10[j],
                b.correlation_of(k10[j]),
                b.rank_of(k10[j])
            );
        }
        println!(
            "\nrecovered {}/{key_bytes} bytes; avg corr(correct) = {:+.3}; avg rank = {:.1}",
            out.num_correct, out.avg_correct_correlation, out.avg_rank_of_correct
        );
        println!(
            "remaining key security: ~2^{:.1} candidate keys to enumerate",
            rcoal_attack::log2_key_rank(&rec, &k10)
        );
    } else {
        let j: usize = byte_spec.parse().map_err(|_| {
            format!(
                "--byte must be 0..={} or 'all', got {byte_spec:?}",
                key_bytes - 1
            )
        })?;
        if j >= key_bytes {
            return Err(format!("--byte must be 0..={} or 'all'", key_bytes - 1));
        }
        let rec = attack
            .recover_byte(&samples, j)
            .map_err(|e| e.to_string())?;
        println!(
            "byte {j}: guess 0x{:02x} actual 0x{:02x} corr {:+.3} rank {}",
            rec.best_guess,
            k10[j],
            rec.correlation_of(k10[j]),
            rec.rank_of(k10[j])
        );
    }
    telemetry.write_metrics(&registry)?;
    Ok(())
}

/// The `attack --max-samples` path: single-pass streaming engine with
/// simulator-backed generation, online per-guess correlators, and
/// optional early termination. Peak memory is independent of the
/// sample budget.
fn cmd_attack_stream(args: &ParsedArgs) -> Result<(), String> {
    let policy = policy_from(args)?;
    let workload = workload_from(args)?;
    let budget: usize = args.get_or("max-samples", 400)?;
    let chunk: usize = args.get_or("chunk", 4096)?;
    let early_stop: bool = args.get_or("early-stop", true)?;
    let seed: u64 = args.get_or("seed", 7)?;
    let byte_spec = args.get("byte").unwrap_or("all").to_string();
    let threads = parse_threads(args)?;
    let telemetry = TelemetryArgs::parse(args)?;
    let key_bytes = workload.oracle().key_bytes().min(16);
    if telemetry.trace_out.is_some() {
        return Err(
            "--trace-out needs a materialized run; streamed launches are not collected".into(),
        );
    }

    println!("victim policy : {policy}");
    println!("workload      : {}", workload.name());
    println!(
        "streaming     : up to {budget} samples in chunks of {chunk}, early stop {}",
        if early_stop { "on" } else { "off" }
    );
    let registry = MetricsRegistry::new();
    let mut cfg = ExperimentConfig::new(policy, 0, 32)
        .with_workload(workload.name())
        .with_seed(seed);
    if let Some(t) = threads {
        cfg = cfg.with_threads(t);
    }
    let mut source =
        SimulatorSource::new(cfg, TimingSource::LastRoundCycles).map_err(|e| e.to_string())?;
    let k10 = source.attacked_subkey();
    let mut attack = Attack::against(policy, 32)
        .with_oracle(workload.oracle())
        .with_seed(seed ^ 0xa77ac)
        .with_threads(threads);
    if telemetry.wants_any() {
        attack = attack.with_metrics(&registry);
    }
    let mut opts = StreamOptions::new(budget).with_chunk(chunk);
    if early_stop {
        opts = opts.with_early_stop(EarlyStop::default());
    }

    if byte_spec == "all" {
        let rec = stream_recover_key(&attack, &mut source, &opts).map_err(|e| e.to_string())?;
        let out = rec.recovery.outcome(&k10);
        for (j, b) in rec.recovery.bytes.iter().enumerate() {
            let hit = if b.best_guess == k10[j] {
                "HIT "
            } else {
                "miss"
            };
            println!(
                "byte {j:2}: guess 0x{:02x} actual 0x{:02x} [{hit}] corr {:+.3} rank {}",
                b.best_guess,
                k10[j],
                b.correlation_of(k10[j]),
                b.rank_of(k10[j])
            );
        }
        println!(
            "\nrecovered {}/{key_bytes} bytes; avg corr(correct) = {:+.3}; avg rank = {:.1}",
            out.num_correct, out.avg_correct_correlation, out.avg_rank_of_correct
        );
        println!(
            "remaining key security: ~2^{:.1} candidate keys to enumerate",
            rcoal_attack::log2_key_rank(&rec.recovery, &k10)
        );
        print_stream_outcome(rec.samples, budget, rec.terminated_early, rec.checkpoints);
    } else {
        let j: usize = byte_spec.parse().map_err(|_| {
            format!(
                "--byte must be 0..={} or 'all', got {byte_spec:?}",
                key_bytes - 1
            )
        })?;
        if j >= key_bytes {
            return Err(format!("--byte must be 0..={} or 'all'", key_bytes - 1));
        }
        let rec = stream_recover_byte(&attack, &mut source, j, &opts).map_err(|e| e.to_string())?;
        println!("online trajectory (byte {j}):");
        for cp in &rec.checkpoints {
            println!(
                "  n={:>9} leader 0x{:02x} corr {:+.4} runner-up {:+.4} margin {:+.4} stable x{}",
                cp.samples, cp.leader, cp.leader_corr, cp.runner_up_corr, cp.margin, cp.stable_for
            );
        }
        println!(
            "byte {j}: guess 0x{:02x} actual 0x{:02x} corr {:+.3} rank {}",
            rec.recovery.best_guess,
            k10[j],
            rec.recovery.correlation_of(k10[j]),
            rec.recovery.rank_of(k10[j])
        );
        print_stream_outcome(
            rec.samples,
            budget,
            rec.terminated_early,
            rec.checkpoints.len(),
        );
    }
    telemetry.write_metrics(&registry)?;
    Ok(())
}

fn print_stream_outcome(samples: usize, budget: usize, terminated_early: bool, checkpoints: usize) {
    if terminated_early {
        println!(
            "early stop    : terminated after {samples} of {budget} samples \
             ({checkpoints} checkpoint(s); leader stable)"
        );
    } else {
        println!(
            "early stop    : budget exhausted at {samples} samples ({checkpoints} checkpoint(s))"
        );
    }
}

fn cmd_audit(args: &ParsedArgs) -> Result<(), String> {
    let policy = policy_from(args)?;
    let workload = workload_from(args)?;
    let samples: usize = args.get_or("samples", 512)?;
    let lines: usize = args.get_or("lines", 32)?;
    let seed: u64 = args.get_or("seed", 7)?;
    let byte: usize = args.get_or("byte", 0)?;
    let channel: AuditChannel = args
        .get("channel")
        .unwrap_or("byte-accesses")
        .parse()
        .map_err(|e: String| e)?;
    let threads = parse_threads(args)?;
    let gate = args
        .get("gate")
        .map(str::parse::<Expectation>)
        .transpose()?;

    let mut spec = AuditSpec::new().with_byte(byte).with_channel(channel);
    if let Some(t) = args.get("t-threshold") {
        spec = spec.with_t_threshold(
            t.parse()
                .map_err(|_| format!("--t-threshold must be a number, got {t:?}"))?,
        );
    }
    if let Some(floor) = args.get("mi-floor") {
        spec = spec.with_mi_floor_bits(
            floor
                .parse()
                .map_err(|_| format!("--mi-floor must be a number, got {floor:?}"))?,
        );
    }

    let mut scenario = Scenario::new(policy, samples, lines)
        .with_workload(workload.name())
        .with_seed(seed);
    if !channel.needs_cycles() {
        // Access-count channels don't need the cycle simulator; the
        // functional run is orders of magnitude cheaper and identical
        // on the audited channel.
        scenario = scenario.functional_only();
    }

    let mut runner = match args.get("cache") {
        Some(dir) => SweepRunner::with_disk_cache(dir).map_err(|e| e.to_string())?,
        None => SweepRunner::new(),
    };
    if let Some(t) = threads {
        runner = runner.with_threads(t);
    }
    let (_, report) = runner
        .audit_one(&scenario, &spec)
        .map_err(|e| e.to_string())?;
    let hits = runner.report().hits();
    println!(
        "leakage audit    : {policy}, workload {}, byte {byte}, channel {channel}, {samples} samples{}",
        workload.name(),
        if hits > 0 { " (served from cache)" } else { "" }
    );

    let t = &report.timing;
    println!(
        "tvla t-test      : |t| = {:.2} vs threshold {} -> {} (classes {}/{})",
        t.welch.t.abs(),
        spec.t_threshold,
        if t.welch.exceeds(spec.t_threshold) {
            "LEAK"
        } else {
            "quiet"
        },
        t.welch.n_low,
        t.welch.n_high,
    );
    println!(
        "mutual info      : {:.4} bits corrected (plug-in {:.4}, bias {:.4}) vs floor {} -> {}",
        t.mi.corrected_bits,
        t.mi.bits,
        t.mi.bias_bits,
        spec.mi_floor_bits,
        if t.mi.corrected_bits > spec.mi_floor_bits {
            "LEAK"
        } else {
            "quiet"
        },
    );
    let s = if report.empirical_s.is_finite() {
        format!("{:.0}", report.empirical_s)
    } else {
        "unbounded".to_string()
    };
    println!(
        "empirical        : rho = {:+.4}, S = 1/rho^2 ~ {s} samples (true-guess rank {})",
        report.empirical_rho,
        report.trajectory.last().map_or(255, |p| p.rank),
    );
    match &report.theory {
        Some(th) => {
            let pred = if th.predicted_s.is_finite() {
                format!("{:.0}", th.predicted_s)
            } else {
                "unbounded".to_string()
            };
            println!(
                "theory           : {}(m={}) predicts rho = {:.4}, S ~ {pred} -> {}",
                th.mechanism,
                th.m,
                th.predicted_rho,
                if th.ok { "agrees" } else { "DISAGREES" },
            );
        }
        None => println!("theory           : no closed form for this policy/channel"),
    }
    for stage in &report.stages {
        println!(
            "stage {:18}: |t| = {:.2}, MI = {:.4} bits -> {}",
            stage.name,
            stage.welch.t.abs(),
            stage.mi.corrected_bits,
            if stage.leaky { "LEAK" } else { "quiet" },
        );
    }
    println!(
        "channel quantiles: p50 {} / p95 {} / p99 {} (mean {:.1})",
        report.quantiles.p50, report.quantiles.p95, report.quantiles.p99, report.quantiles.mean,
    );
    println!(
        "verdict          : {}",
        if report.leaky { "LEAKY" } else { "not leaky" }
    );

    if let Some(path) = args.get("out") {
        write_artifact(path, &(report.to_json() + "\n"))?;
        println!("report           : wrote {path}");
    }

    if let Some(expectation) = gate {
        let outcome = evaluate_gate(&report, expectation);
        if outcome.pass {
            println!("gate             : PASS (expected {expectation})");
        } else {
            println!("gate             : FAIL (expected {expectation})");
            for failure in &outcome.failures {
                println!("  - {failure}");
            }
            std::process::exit(1);
        }
    }
    Ok(())
}

fn cmd_score(args: &ParsedArgs) -> Result<(), String> {
    let samples: usize = args.get_or("samples", 100)?;
    let seed: u64 = args.get_or("seed", 7)?;
    if let Some(t) = parse_threads(args)? {
        // The figure generators size their worker pools from the
        // environment; exporting here lets --threads govern the whole
        // sweep without threading a parameter through every generator.
        std::env::set_var(rcoal_parallel::THREADS_ENV, t.to_string());
    }
    println!("sweeping 4 mechanisms x M in {{2,4,8,16}} with {samples} plaintexts each ...");
    let cmp = fig15_16_comparison(samples, seed).map_err(|e| e.to_string())?;
    let mut scores = fig17_rcoal_score(&cmp).map_err(|e| e.to_string())?;
    scores.sort_by(|a, b| b.security_oriented.total_cmp(&a.security_oriented));
    println!("\nby security-oriented score (a = b = 1):");
    for s in scores.iter().take(5) {
        println!(
            "  {:>8} M={:<2} score {:.1}",
            s.mechanism, s.m, s.security_oriented
        );
    }
    scores.sort_by(|a, b| b.performance_oriented.total_cmp(&a.performance_oriented));
    println!("by performance-oriented score (a = 1, b = 20):");
    for s in scores.iter().take(5) {
        println!(
            "  {:>8} M={:<2} score {:.4}",
            s.mechanism, s.m, s.performance_oriented
        );
    }
    Ok(())
}

fn cmd_conformance(args: &ParsedArgs) -> Result<(), String> {
    let mut opts = SuiteOptions::default();
    opts.cases = args.get_or("cases", opts.cases)?;
    opts.seed = args.get_or("seed", opts.seed)?;
    if let Some(dir) = args.get("goldens") {
        opts.goldens_dir = PathBuf::from(dir);
    }
    if args.get_or("update-goldens", false)? {
        opts.update_goldens = true;
    }
    println!(
        "conformance suite: {} simulator scenario(s), seed {:#x}, goldens at {}{}",
        opts.cases,
        opts.seed,
        opts.goldens_dir.display(),
        if opts.update_goldens {
            " (update mode)"
        } else {
            ""
        }
    );
    let report = run_suite(&opts).map_err(|e| e.to_string())?;
    println!("{report}");
    if report.passed() {
        Ok(())
    } else {
        // Violations were already printed in full; skip the usage text.
        std::process::exit(1);
    }
}

/// Reads and expands a scenario/sweep spec file.
fn load_spec(path: &str) -> Result<Vec<rcoal_scenario::Scenario>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    let spec = parse_spec(&text).map_err(|e| format!("{path}: {e}"))?;
    spec.expand().map_err(|e| format!("{path}: {e}"))
}

fn cmd_scenario(args: &ParsedArgs) -> Result<(), String> {
    let action = args
        .positional
        .get(1)
        .map(String::as_str)
        .ok_or("scenario needs an action: validate or print")?;
    let path = args
        .positional
        .get(2)
        .map(String::as_str)
        .ok_or("scenario needs a FILE")?;
    let scenarios = load_spec(path)?;
    match action {
        "validate" => {
            println!("ok: {} scenario(s)", scenarios.len());
            for s in &scenarios {
                println!(
                    "  {}  {}  n={} lines={}",
                    s.hash_hex(),
                    s.policy,
                    s.num_plaintexts,
                    s.lines
                );
            }
            Ok(())
        }
        "print" => {
            for s in &scenarios {
                println!("{}", s.to_json());
            }
            Ok(())
        }
        other => Err(format!(
            "unknown scenario action {other:?} (expected validate or print)"
        )),
    }
}

/// Parses an optional `--name N` u64 flag.
fn opt_u64(args: &ParsedArgs, name: &str) -> Result<Option<u64>, String> {
    match args.get(name) {
        None => Ok(None),
        Some(s) => s
            .parse()
            .map(Some)
            .map_err(|_| format!("--{name} must be a non-negative integer, got {s:?}")),
    }
}

fn cmd_sweep(args: &ParsedArgs) -> Result<(), String> {
    let spec_path = args.get("spec").ok_or("sweep needs --spec FILE")?;
    let out = PathBuf::from(args.get("out").ok_or("sweep needs --out DIR")?);
    let caching: bool = args.get_or("cache", true)?;
    let threads = parse_threads(args)?;
    let resume: bool = args.get_or("resume", false)?;
    let chaos_seed: u64 = args.get_or("chaos-seed", 0)?;
    let panic_period = opt_u64(args, "chaos-panic-period")?;
    let abort_after = opt_u64(args, "chaos-abort-after")?;
    let supervised = resume || panic_period.is_some() || abort_after.is_some();
    if supervised && !caching {
        return Err("--resume / --chaos-* need the cache (drop --cache false)".into());
    }

    let scenarios = load_spec(spec_path)?;
    println!("expanded {} scenario(s) from {spec_path}", scenarios.len());

    let mut runner = if supervised {
        SweepRunner::with_store(out.join("cache")).map_err(|e| e.to_string())?
    } else if caching {
        SweepRunner::with_disk_cache(out.join("cache")).map_err(|e| e.to_string())?
    } else {
        SweepRunner::uncached()
    };
    if let Some(t) = threads {
        runner = runner.with_threads(t);
    }
    if panic_period.is_some() || abort_after.is_some() {
        let mut plan = ChaosPlan::seeded(chaos_seed);
        if let Some(p) = panic_period {
            plan = plan.with_panics(p);
        }
        if let Some(n) = abort_after {
            plan = plan.with_abort_after(n);
        }
        runner = runner.with_chaos(plan);
    }

    // The supervised path quarantines broken scenarios (row = None);
    // the strict path fails the whole sweep on the first one.
    let (rows, quarantined) = if supervised {
        let outcome = runner.run_scenarios_supervised(&scenarios);
        (outcome.rows, outcome.quarantined)
    } else {
        let results = runner
            .run_scenarios(&scenarios)
            .map_err(|e| e.to_string())?;
        (results.into_iter().map(Some).collect(), Vec::new())
    };

    let results_dir = out.join("results");
    std::fs::create_dir_all(&results_dir)
        .map_err(|e| format!("cannot create {}: {e}", results_dir.display()))?;
    let mut entries = Vec::with_capacity(scenarios.len());
    for (s, row) in scenarios.iter().zip(&rows) {
        let hash = s.hash_hex();
        let mut entry = ObjBuilder::new()
            .field("hash", Value::str(&hash))
            .field("scenario", s.to_value());
        match row {
            Some(d) => {
                let result_ref = match encode_run(d) {
                    Some(json) => {
                        let file = results_dir.join(format!("{hash}.json"));
                        std::fs::write(&file, json)
                            .map_err(|e| format!("cannot write {}: {e}", file.display()))?;
                        Value::str(format!("results/{hash}.json"))
                    }
                    // Telemetry-bearing runs stay memory-only by design.
                    None => Value::Null,
                };
                entry = entry
                    .field("result", result_ref)
                    .field("mean_total_accesses", Value::f64(d.mean_total_accesses()));
                if let Ok(cycles) = d.mean_total_cycles() {
                    entry = entry.field("mean_total_cycles", Value::f64(cycles));
                }
            }
            None => {
                entry = entry
                    .field("result", Value::Null)
                    .field("quarantined", Value::Bool(true));
            }
        }
        entries.push(entry.build());
    }
    let index = ObjBuilder::new()
        .field("schema", Value::str("rcoal-sweep-results/v1"))
        .field("spec", Value::str(spec_path))
        .field("runs", Value::Arr(entries))
        .build();
    let index_path = out.join("index.json");
    let mut index_json = index.to_json();
    index_json.push('\n');
    std::fs::write(&index_path, index_json)
        .map_err(|e| format!("cannot write {}: {e}", index_path.display()))?;

    let report = runner.report();
    let stats = runner.cache_stats();
    println!(
        "served {} run(s): {} simulated, {} from cache ({:.0}% hit rate; {} disk hits)",
        report.served,
        report.launched,
        report.hits(),
        100.0 * report.hit_rate(),
        stats.disk_hits
    );
    if supervised {
        println!(
            "journal          : {} run(s) replayed from a previous sweep, {} retried",
            report.journal_replayed, report.retried
        );
    }
    if !quarantined.is_empty() {
        eprintln!("warning: {} scenario(s) quarantined:", quarantined.len());
        for q in &quarantined {
            eprintln!(
                "  {:016x} after {} attempt(s): {}",
                q.hash, q.attempts, q.reason
            );
        }
    }
    println!("index written    : {}", index_path.display());
    Ok(())
}

fn cmd_cache(args: &ParsedArgs) -> Result<(), String> {
    let action = args
        .positional
        .get(1)
        .map(String::as_str)
        .ok_or("cache needs an action: verify or repair")?;
    let dir = args
        .positional
        .get(2)
        .map(String::as_str)
        .ok_or("cache needs a DIR")?;
    // Opening a store creates its directory; an audit must not
    // conjure an empty-but-clean store out of a typo'd path.
    if !std::path::Path::new(dir).is_dir() {
        return Err(format!("cache directory {dir:?} does not exist"));
    }
    let cache: RunCache<ExperimentData> =
        RunCache::with_disk(dir, encode_run, decode_run).map_err(|e| e.to_string())?;
    let (audit, repaired) = match action {
        "verify" => (cache.verify().map_err(|e| e.to_string())?, false),
        "repair" => (cache.repair().map_err(|e| e.to_string())?, true),
        other => {
            return Err(format!(
                "unknown cache action {other:?} (expected verify or repair)"
            ))
        }
    };
    println!(
        "{dir}: {} entr{} checked, {} ok, {} corrupt{}",
        audit.entries,
        if audit.entries == 1 { "y" } else { "ies" },
        audit.ok,
        audit.corrupt,
        if repaired {
            format!(", {} moved to .corrupt", audit.repaired)
        } else {
            String::new()
        }
    );
    for path in &audit.corrupt_paths {
        println!("  corrupt: {}", path.display());
    }
    if !repaired && !audit.is_clean() {
        // Verification failures must be visible to scripts/CI.
        std::process::exit(1);
    }
    Ok(())
}
