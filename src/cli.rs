//! Argument parsing helpers for the `rcoal` command-line tool
//! (`src/bin/rcoal-cli.rs`). Kept in the library so the grammar is unit
//! tested.

use rcoal_core::CoalescingPolicy;

/// Parses a policy spec by delegating to `CoalescingPolicy`'s `FromStr`
/// (which owns the grammar shared by the CLI and scenario files):
///
/// * `baseline`, `disabled`
/// * `fss:M`, `rss:M`, `fss-rts:M`, `rss-rts:M` with `M` the subwarp count
/// * the `Display` form, e.g. `FSS(M=8)` or `RSS(M=4, skewed)`
///
/// # Errors
///
/// Returns a human-readable message for unknown names, missing or
/// malformed subwarp counts, and policy validation failures.
pub fn parse_policy(spec: &str) -> Result<CoalescingPolicy, String> {
    spec.parse::<CoalescingPolicy>().map_err(|e| e.to_string())
}

/// Parses the `--threads` option into an experiment thread count.
///
/// Returns `None` when the flag is absent, which defers the decision to
/// the `RCOAL_THREADS` environment variable and then the machine's
/// available parallelism (see `rcoal_parallel::resolve_threads`).
///
/// # Errors
///
/// Returns a message naming `--threads` for a non-numeric value or `0`
/// (use `--threads 1` for a sequential run).
pub fn parse_threads(args: &ParsedArgs) -> Result<Option<usize>, String> {
    match args.get("threads") {
        None => Ok(None),
        Some(v) => {
            let n: usize = v
                .parse()
                .map_err(|_| format!("option --threads has invalid value {v:?}"))?;
            if n == 0 {
                return Err(
                    "option --threads must be positive (use --threads 1 for a sequential run)"
                        .into(),
                );
            }
            Ok(Some(n))
        }
    }
}

/// Writes a telemetry artifact (trace JSONL, metrics JSON) to `path`.
///
/// # Errors
///
/// Returns a message naming the path on any I/O failure.
pub fn write_artifact(path: &str, contents: &str) -> Result<(), String> {
    std::fs::write(path, contents).map_err(|e| format!("cannot write {path:?}: {e}"))
}

/// Extracts `--flag value` pairs and positional arguments from raw args.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParsedArgs {
    /// Positional arguments in order.
    pub positional: Vec<String>,
    /// `--key value` options in order of appearance.
    pub options: Vec<(String, String)>,
}

impl ParsedArgs {
    /// Parses raw arguments; every `--flag` must be followed by a value.
    ///
    /// # Errors
    ///
    /// Returns a message naming a trailing flag with no value.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut out = ParsedArgs::default();
        let mut iter = args.into_iter();
        while let Some(a) = iter.next() {
            if let Some(key) = a.strip_prefix("--") {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("option --{key} needs a value"))?;
                out.options.push((key.to_string(), value));
            } else {
                out.positional.push(a);
            }
        }
        Ok(out)
    }

    /// Last value given for `key`, if any.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Parses option `key` as `T`, falling back to `default`.
    ///
    /// # Errors
    ///
    /// Returns a message if the value fails to parse.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("option --{key} has invalid value {v:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcoal_core::NumSubwarps;

    #[test]
    fn parses_simple_policies() {
        assert_eq!(parse_policy("baseline"), Ok(CoalescingPolicy::Baseline));
        assert_eq!(parse_policy("BASELINE"), Ok(CoalescingPolicy::Baseline));
        assert_eq!(parse_policy("disabled"), Ok(CoalescingPolicy::Disabled));
        assert_eq!(parse_policy("off"), Ok(CoalescingPolicy::Disabled));
    }

    #[test]
    fn parses_subwarp_policies() {
        assert_eq!(
            parse_policy("fss:8"),
            Ok(CoalescingPolicy::Fss {
                num_subwarps: NumSubwarps::new(8, 32).unwrap()
            })
        );
        assert_eq!(
            parse_policy("rss-rts:4"),
            CoalescingPolicy::rss_rts(4).map_err(|_| String::new())
        );
        assert_eq!(
            parse_policy("FSS+RTS:16"),
            CoalescingPolicy::fss_rts(16).map_err(|_| String::new())
        );
    }

    #[test]
    fn rejects_bad_specs() {
        assert!(parse_policy("fss").unwrap_err().contains("subwarp count"));
        assert!(parse_policy("fss:3").unwrap_err().contains("divide"));
        assert!(parse_policy("fss:x").unwrap_err().contains("invalid"));
        assert!(parse_policy("magic").unwrap_err().contains("unknown"));
        assert!(parse_policy("rss:0").is_err());
        assert!(parse_policy("rss:33").is_err());
    }

    #[test]
    fn parsed_args_splits_flags_and_positionals() {
        let args = ParsedArgs::parse(
            ["attack", "--samples", "200", "--policy", "fss:4", "extra"].map(String::from),
        )
        .unwrap();
        assert_eq!(args.positional, vec!["attack", "extra"]);
        assert_eq!(args.get("samples"), Some("200"));
        assert_eq!(args.get("policy"), Some("fss:4"));
        assert_eq!(args.get("missing"), None);
        assert_eq!(args.get_or("samples", 10usize), Ok(200));
        assert_eq!(args.get_or("seed", 7u64), Ok(7));
        assert!(args.get_or::<usize>("policy", 1).is_err());
    }

    #[test]
    fn trailing_flag_without_value_is_an_error() {
        let err = ParsedArgs::parse(["--samples".to_string()]).unwrap_err();
        assert!(err.contains("--samples"));
    }

    #[test]
    fn threads_flag_parses_and_defaults_to_none() {
        let none = ParsedArgs::parse(["simulate".to_string()]).unwrap();
        assert_eq!(parse_threads(&none), Ok(None));
        let four = ParsedArgs::parse(["--threads", "4"].map(String::from)).unwrap();
        assert_eq!(parse_threads(&four), Ok(Some(4)));
    }

    #[test]
    fn threads_flag_rejects_zero_and_garbage() {
        let zero = ParsedArgs::parse(["--threads", "0"].map(String::from)).unwrap();
        let err = parse_threads(&zero).unwrap_err();
        assert!(err.contains("--threads"), "error names the flag: {err}");
        assert!(err.contains("positive"), "error explains the bound: {err}");
        let junk = ParsedArgs::parse(["--threads", "many"].map(String::from)).unwrap();
        assert!(parse_threads(&junk).unwrap_err().contains("--threads"));
    }

    #[test]
    fn write_artifact_roundtrips_and_names_bad_paths() {
        let path = std::env::temp_dir().join("rcoal-cli-artifact-test.json");
        let path_str = path.to_str().unwrap();
        write_artifact(path_str, "{\"ok\":1}\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"ok\":1}\n");
        std::fs::remove_file(&path).ok();
        let err = write_artifact("/nonexistent-dir/x/y.json", "x").unwrap_err();
        assert!(err.contains("/nonexistent-dir/x/y.json"), "{err}");
    }

    #[test]
    fn later_options_override_earlier_ones() {
        let args = ParsedArgs::parse(["--seed", "1", "--seed", "2"].map(String::from)).unwrap();
        assert_eq!(args.get("seed"), Some("2"));
    }
}
