//! # rcoal — randomized GPU memory-access coalescing against timing attacks
//!
//! A full-system Rust reproduction of *RCoal: Mitigating GPU Timing Attack
//! via Subwarp-Based Randomized Coalescing Techniques* (HPCA 2018).
//!
//! This facade crate re-exports the workspace's components:
//!
//! * [`core`] — the subwarp coalescing mechanisms (FSS, RSS, RTS) and the
//!   modified coalescing unit; the paper's primary contribution.
//! * [`sim`] — a cycle-level GPU timing simulator (SMs, warp scheduler,
//!   crossbar interconnect, GDDR5 memory controllers with FR-FCFS).
//! * [`aes`] — AES-128 with T-tables plus the GPU kernel model that turns
//!   encryptions into per-warp memory-access traces.
//! * [`attack`] — the correlation timing attacks (baseline, FSS, RSS, and
//!   the +RTS "corresponding attacks") used to evaluate each defense.
//! * [`theory`] — the analytical security model reproducing Table II.
//! * [`audit`] — the leakage-observability layer: TVLA-style t-tests,
//!   mutual-information estimates, empirical normalized-S, and theory
//!   cross-checks packaged as a typed [`LeakageReport`] with a CI gate.
//! * [`scenario`] — declarative run descriptions ([`Scenario`],
//!   [`SweepSpec`]) with stable content hashes and the content-addressed
//!   run cache behind the figure generators.
//! * [`experiments`] — end-to-end experiment harness regenerating every
//!   table and figure in the paper's evaluation, executed through the
//!   scenario/sweep engine ([`SweepRunner`]).
//! * [`conformance`] — the validation layer for all of the above:
//!   differential oracles for the coalescer and DRAM scheduler,
//!   golden-master fixtures, and telemetry-driven invariant checking.
//!
//! [`Scenario`]: prelude::Scenario
//! [`LeakageReport`]: prelude::LeakageReport
//! [`SweepSpec`]: prelude::SweepSpec
//! [`SweepRunner`]: prelude::SweepRunner
//!
//! # Quickstart
//!
//! ```
//! use rcoal::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Encrypt 100 random plaintexts (32 lines each) on the simulated GPU
//! // under the vulnerable baseline policy, then under RSS+RTS.
//! let cfg = ExperimentConfig::new(CoalescingPolicy::Baseline, 8, 32).with_seed(1);
//! let base = cfg.run()?;
//!
//! let rss_rts = ExperimentConfig::new(CoalescingPolicy::rss_rts(4)?, 8, 32)
//!     .with_seed(1)
//!     .run()?;
//!
//! // Randomization costs performance but raises security.
//! assert!(rss_rts.mean_total_accesses() > base.mean_total_accesses());
//! # Ok(())
//! # }
//! ```

pub mod cli;

pub use rcoal_aes as aes;
pub use rcoal_attack as attack;
pub use rcoal_audit as audit;
pub use rcoal_conformance as conformance;
pub use rcoal_core as core;
pub use rcoal_experiments as experiments;
pub use rcoal_gpu_sim as sim;
pub use rcoal_parallel as parallel;
pub use rcoal_scenario as scenario;
pub use rcoal_telemetry as telemetry;
pub use rcoal_theory as theory;
pub use rcoal_workload as workload;

/// Commonly used items, importable with `use rcoal::prelude::*`.
pub mod prelude {
    pub use rcoal_aes::{Aes128, AesGpuKernel};
    pub use rcoal_attack::{
        stream_recover_byte, stream_recover_key, Attack, AttackError, AttackSample, EarlyStop,
        KeyRecovery, RecoveryOutcome, SampleSource, SliceSource, StreamOptions,
    };
    pub use rcoal_audit::{
        evaluate_gate, AuditChannel, AuditSpec, Expectation, GateOutcome, LeakageReport,
        StreamingAudit,
    };
    pub use rcoal_conformance::{run_suite, SuiteOptions, SuiteReport};
    pub use rcoal_core::{
        Coalescer, CoalescingPolicy, NumSubwarps, SizeDistribution, SubwarpAssignment,
    };
    pub use rcoal_experiments::{
        audit_data, ExperimentConfig, ExperimentData, ExperimentError, ExperimentTelemetry,
        LaunchTrace, RunnerReport, SimulatorSource, SweepRunner, TelemetrySpec, TimingSource,
    };
    pub use rcoal_gpu_sim::{
        FaultPlan, GpuConfig, GpuSimulator, ReplyJitter, SimError, SimProfile, SimStats,
        SimTelemetry,
    };
    pub use rcoal_parallel::{parallel_map, resolve_threads, PoolReport};
    pub use rcoal_scenario::{
        parse_spec, GpuOverrides, RunCache, Scenario, ScenarioError, SweepSpec,
    };
    pub use rcoal_telemetry::{
        Event, EventRing, Hist64, MetricsRegistry, MetricsSnapshot, Severity,
    };
    pub use rcoal_theory::{table2, Mechanism, RCoalScore, SecurityModel};
    pub use rcoal_workload::{KernelWorkload, WorkloadGeometry, WorkloadKernel};
}
