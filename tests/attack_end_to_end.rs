//! End-to-end attack/defense integration: the full pipeline from
//! plaintext generation through the simulated GPU to key recovery.
//!
//! These tests use the *functional* access-count timing source
//! ([`TimingSource::LastRoundAccesses`]) where possible: it is exact (no
//! scheduler noise), fast in debug builds, and matches the paper's §VI-D
//! methodology for isolating the coalescing channel.

use rcoal::prelude::*;

fn run(policy: CoalescingPolicy, n: usize, seed: u64) -> ExperimentData {
    ExperimentConfig::new(policy, n, 32)
        .with_seed(seed)
        .functional_only()
        .run()
        .expect("experiment")
}

#[test]
fn baseline_attack_recovers_key_byte_on_vulnerable_gpu() {
    let data = run(CoalescingPolicy::Baseline, 600, 101);
    let k10 = data.true_last_round_key();
    let attack = Attack::baseline(32);
    let rec = attack
        .recover_byte(
            &data
                .attack_samples(TimingSource::LastRoundAccesses)
                .unwrap(),
            0,
        )
        .unwrap();
    assert_eq!(
        rec.rank_of(k10[0]),
        0,
        "baseline attack must recover byte 0 from clean access counts"
    );
    assert_eq!(rec.best_guess, k10[0]);
}

#[test]
fn disabling_coalescing_closes_the_channel() {
    let data = run(CoalescingPolicy::Disabled, 200, 102);
    let k10 = data.true_last_round_key();
    // Every plaintext issues exactly 32 × 16 last-round accesses.
    assert!(data.last_round_accesses.iter().all(|&a| a == 512));
    let attack = Attack::baseline(32);
    let rec = attack
        .recover_byte(
            &data
                .attack_samples(TimingSource::LastRoundAccesses)
                .unwrap(),
            0,
        )
        .unwrap();
    assert_eq!(
        rec.correlation_of(k10[0]),
        0.0,
        "constant timing leaks nothing"
    );
    assert!(rec.correlations.iter().all(|&c| c == 0.0));
}

#[test]
fn fss_beats_the_naive_attack_but_falls_to_the_fss_attack() {
    let policy = CoalescingPolicy::fss(4).expect("4 divides 32");
    let data = run(policy, 400, 103);
    let k10 = data.true_last_round_key();
    // Isolate byte 0's channel (its own T4 load's access count) so the
    // other 15 byte positions do not act as noise.
    let samples = data.attack_samples(TimingSource::ByteAccesses(0)).unwrap();

    // The FSS attack (Algorithm 1) mirrors the subwarping: the correct
    // guess's prediction equals the true count exactly, so corr = 1.
    let fss_attack = Attack::against(policy, 32);
    let rec = fss_attack.recover_byte(&samples, 0).unwrap();
    assert_eq!(rec.rank_of(k10[0]), 0, "FSS attack recovers the byte");
    assert!(
        rec.correlation_of(k10[0]) > 0.999,
        "Algorithm 1 reproduces the count: corr = {}",
        rec.correlation_of(k10[0])
    );

    // The naive (num-subwarp = 1) attack sees a weaker correlation than
    // the matched attack does.
    let naive = Attack::baseline(32);
    let naive_rec = naive.recover_byte(&samples, 0).unwrap();
    assert!(
        naive_rec.correlation_of(k10[0]) < rec.correlation_of(k10[0]) - 0.2,
        "naive corr {} should be well below matched corr {}",
        naive_rec.correlation_of(k10[0]),
        rec.correlation_of(k10[0])
    );
}

#[test]
fn randomized_mechanisms_break_the_corresponding_attack() {
    // Timing = byte-0's true access count (the cleanest possible channel
    // for the attacker). Even then, the defense's per-launch randomness
    // caps the attacker's correlation near the analytic rho.
    for (policy, max_corr) in [
        (CoalescingPolicy::fss_rts(8).expect("valid"), 0.45),
        (CoalescingPolicy::rss_rts(8).expect("valid"), 0.45),
    ] {
        let data = run(policy, 300, 104);
        let k10 = data.true_last_round_key();
        let attack = Attack::against(policy, 32).with_seed(999);
        let rec = attack
            .recover_byte(
                &data
                    .attack_samples(TimingSource::LastRoundAccesses)
                    .unwrap(),
                0,
            )
            .unwrap();
        let corr = rec.correlation_of(k10[0]);
        assert!(
            corr < max_corr,
            "{policy}: correct-guess corr {corr} should be far below 1"
        );
    }
}

#[test]
fn fss_at_32_subwarps_is_equivalent_to_disabling() {
    let fss32 = run(CoalescingPolicy::fss(32).expect("valid"), 50, 105);
    let disabled = run(CoalescingPolicy::Disabled, 50, 105);
    assert_eq!(fss32.last_round_accesses, disabled.last_round_accesses);
    assert_eq!(fss32.total_accesses, disabled.total_accesses);
}

#[test]
fn defense_strength_orders_like_table_2_at_m8() {
    // Table II at M = 8: FSS (rho = 1) < FSS+RTS (0.09) — i.e. FSS+RTS
    // needs far more samples. Check the empirical ordering of correct-
    // guess correlations: FSS ≈ 1, randomized mechanisms ≪ FSS.
    let n = 300;
    let seed = 106;
    let corr_for = |policy: CoalescingPolicy| {
        let data = run(policy, n, seed);
        let k10 = data.true_last_round_key();
        let attack = Attack::against(policy, 32).with_seed(7);
        let rec = attack
            .recover_byte(
                &data.attack_samples(TimingSource::ByteAccesses(0)).unwrap(),
                0,
            )
            .unwrap();
        rec.correlation_of(k10[0])
    };
    let fss = corr_for(CoalescingPolicy::fss(8).expect("valid"));
    let fss_rts = corr_for(CoalescingPolicy::fss_rts(8).expect("valid"));
    let rss_rts = corr_for(CoalescingPolicy::rss_rts(8).expect("valid"));
    assert!(fss > 0.9, "FSS is transparent to its attack: {fss}");
    assert!(fss_rts < 0.5, "FSS+RTS resists: {fss_rts}");
    assert!(rss_rts < 0.5, "RSS+RTS resists: {rss_rts}");
}

#[test]
fn multi_warp_plaintexts_still_recoverable_at_baseline() {
    // 64-line plaintexts span two warps; the per-byte channel persists.
    let data = ExperimentConfig::new(CoalescingPolicy::Baseline, 500, 64)
        .with_seed(107)
        .functional_only()
        .run()
        .expect("experiment");
    let k10 = data.true_last_round_key();
    let attack = Attack::baseline(32);
    let rec = attack
        .recover_byte(
            &data
                .attack_samples(TimingSource::LastRoundAccesses)
                .unwrap(),
            5,
        )
        .unwrap();
    assert!(
        rec.rank_of(k10[5]) <= 1,
        "rank {} should be ~0 with 500 clean samples",
        rec.rank_of(k10[5])
    );
}
