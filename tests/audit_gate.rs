//! End-to-end leakage-audit gate: the same configuration CI runs.
//!
//! The gate must be falsifiable in both directions at the calibrated
//! operating point (512 samples, seed 7, byte-accesses channel): the
//! vulnerable baseline has to register as leaky *and* fail a `secure`
//! expectation, while RSS(8)+RTS has to pass `secure` *and* fail a
//! `leaky` expectation. A gate that can only pass is not evidence.

use std::path::PathBuf;

use rcoal::prelude::*;

// The CI gate's operating point. The audit thresholds in
// `rcoal_audit::defaults` are calibrated for this budget — see
// DESIGN.md §13 before changing either side.
const SAMPLES: usize = 512;
const LINES: usize = 32;
const SEED: u64 = 7;

fn gate_scenario(policy: CoalescingPolicy) -> Scenario {
    // The byte-accesses channel is functional: no cycle simulation.
    Scenario::new(policy, SAMPLES, LINES)
        .with_seed(SEED)
        .functional_only()
}

fn audit(runner: &SweepRunner, policy: CoalescingPolicy) -> LeakageReport {
    let (_, report) = runner
        .audit_one(&gate_scenario(policy), &AuditSpec::new())
        .expect("audit");
    report
}

fn audit_workload(runner: &SweepRunner, policy: CoalescingPolicy, workload: &str) -> LeakageReport {
    let (_, report) = runner
        .audit_one(
            &gate_scenario(policy).with_workload(workload),
            &AuditSpec::new(),
        )
        .expect("audit");
    report
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rcoal-audit-gate-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn baseline_is_leaky_and_agrees_with_theory() {
    let report = audit(&SweepRunner::new(), CoalescingPolicy::Baseline);
    assert!(report.leaky, "|t| = {}", report.timing.welch.t);
    assert!(report.timing.welch.t.abs() >= report.spec.t_threshold);
    assert!(report.timing.mi.corrected_bits > report.spec.mi_floor_bits);
    assert!(
        (report.empirical_rho - 1.0).abs() < 1e-9,
        "baseline attack predicts exactly"
    );
    let theory = report.theory.expect("byte-accesses has a closed form");
    assert_eq!(theory.mechanism, "FSS");
    assert_eq!(theory.m, 1);
    assert!(
        theory.ok,
        "empirical S {} vs predicted {}",
        report.empirical_s, theory.predicted_s
    );
}

#[test]
fn rss_rts_is_quiet_and_agrees_with_theory() {
    let policy = CoalescingPolicy::rss_rts(8).expect("8 divides 32");
    let report = audit(&SweepRunner::new(), policy);
    assert!(!report.leaky, "|t| = {}", report.timing.welch.t);
    let theory = report.theory.expect("byte-accesses has a closed form");
    assert!(
        theory.ok,
        "empirical rho {} vs predicted {}",
        report.empirical_rho, theory.predicted_rho
    );
    // The defense must actually cost the attacker samples: Table II has
    // S ~ 78 for RSS(8)+RTS vs 1 for the baseline.
    assert!(report.empirical_s > 10.0, "S = {}", report.empirical_s);
}

#[test]
fn gate_is_falsifiable_in_both_directions() {
    let runner = SweepRunner::new();
    let base = audit(&runner, CoalescingPolicy::Baseline);
    let rss = audit(&runner, CoalescingPolicy::rss_rts(8).expect("8 divides 32"));

    // The directions CI asserts:
    assert!(evaluate_gate(&base, Expectation::Leaky).pass);
    assert!(evaluate_gate(&rss, Expectation::Secure).pass);

    // ...and the inversions that keep them honest:
    let wrong_secure = evaluate_gate(&base, Expectation::Secure);
    assert!(!wrong_secure.pass);
    assert!(
        !wrong_secure.failures.is_empty(),
        "a failing gate must say why"
    );
    let wrong_leaky = evaluate_gate(&rss, Expectation::Leaky);
    assert!(!wrong_leaky.pass);
    assert!(!wrong_leaky.failures.is_empty());
}

#[test]
fn cipher_workloads_gate_leaky_under_fss() {
    // Every registered cipher must trip the gate under deterministic
    // subwarping (FSS leaves the channel fully correlated, Table II row
    // rho = 1) at the same calibrated budget CI uses for AES.
    let runner = SweepRunner::new();
    let fss = CoalescingPolicy::fss(8).expect("8 divides 32");
    for workload in ["present80", "gift64", "rectangle"] {
        for policy in [CoalescingPolicy::Baseline, fss] {
            let report = audit_workload(&runner, policy, workload);
            assert!(
                evaluate_gate(&report, Expectation::Leaky).pass,
                "{workload} under {policy}: |t| = {}, MI = {}",
                report.timing.welch.t,
                report.timing.mi.corrected_bits
            );
            // ...and the inversion that keeps the cell honest:
            assert!(!evaluate_gate(&report, Expectation::Secure).pass);
        }
        let report = audit_workload(&runner, fss, workload);
        let theory = report.theory.expect("ciphers have a closed form");
        assert!(
            theory.ok,
            "{workload}: empirical rho {} vs predicted {}",
            report.empirical_rho, theory.predicted_rho
        );
    }
}

#[test]
fn gather_control_gates_secure_everywhere() {
    // The key-free gather kernel is the false-positive control: its
    // accesses are irregular but key-independent, so a sound audit must
    // find nothing — even under the vulnerable baseline coalescer.
    let runner = SweepRunner::new();
    for policy in [
        CoalescingPolicy::Baseline,
        CoalescingPolicy::fss(8).expect("8 divides 32"),
        CoalescingPolicy::rss_rts(8).expect("8 divides 32"),
    ] {
        let report = audit_workload(&runner, policy, "gather");
        assert!(
            evaluate_gate(&report, Expectation::Secure).pass,
            "gather under {policy}: |t| = {}, MI = {}",
            report.timing.welch.t,
            report.timing.mi.corrected_bits
        );
        assert!(
            !evaluate_gate(&report, Expectation::Leaky).pass,
            "a secure control must fail a leaky expectation"
        );
        assert!(
            report.theory.is_none(),
            "the control opts out of the (N, R) closed form"
        );
    }
}

#[test]
fn report_is_bit_identical_across_thread_counts() {
    let policy = CoalescingPolicy::rss_rts(8).expect("8 divides 32");
    let one = audit(&SweepRunner::new().with_threads(1), policy);
    let four = audit(&SweepRunner::new().with_threads(4), policy);
    assert_eq!(one.to_json(), four.to_json());
}

#[test]
fn cached_rows_audit_without_resimulating() {
    let dir = temp_dir("cache");
    let policy = CoalescingPolicy::rss_rts(8).expect("8 divides 32");

    let warm = SweepRunner::with_disk_cache(&dir).expect("cache dir");
    let first = audit(&warm, policy);
    assert_eq!(warm.report().launched, 1, "cold cache simulates once");

    let cold = SweepRunner::with_disk_cache(&dir).expect("cache dir");
    let second = audit(&cold, policy);
    let report = cold.report();
    assert_eq!(report.launched, 0, "warm cache must not re-simulate");
    assert_eq!(report.hits(), 1);
    assert_eq!(
        first.to_json(),
        second.to_json(),
        "audit over a cached row must match the fresh run bit for bit"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
