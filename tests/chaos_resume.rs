//! End-to-end kill-and-resume test of `rcoal-cli sweep`.
//!
//! Drives the real binary as a subprocess: an uninterrupted reference
//! sweep establishes the expected result bytes; a chaos sweep is then
//! aborted mid-flight (`--chaos-abort-after`, a `std::process::abort`
//! with no unwinding) and resumed with `--resume true`. The resumed
//! sweep must serve every journaled run without re-simulating it and
//! produce result files byte-identical to the reference — the
//! acceptance criterion for the crash-safe store.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rcoal-cli"))
}

fn spec_path() -> String {
    concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/specs/sweep_smoke.json"
    )
    .to_string()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rcoal-cli-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_ok(cmd: &mut Command) -> Output {
    let out = cmd.output().expect("failed to launch rcoal-cli");
    assert!(
        out.status.success(),
        "rcoal-cli failed\nstdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

/// Result files by name, as raw bytes.
fn result_files(out_dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut files = BTreeMap::new();
    let dir = out_dir.join("results");
    for entry in std::fs::read_dir(&dir).unwrap_or_else(|e| panic!("{}: {e}", dir.display())) {
        let path = entry.unwrap().path();
        files.insert(
            path.file_name().unwrap().to_string_lossy().into_owned(),
            std::fs::read(&path).unwrap(),
        );
    }
    files
}

#[test]
fn killed_sweep_resumes_bit_identically() {
    let reference_dir = temp_dir("reference");
    let chaos_dir = temp_dir("interrupted");
    let spec = spec_path();

    // Reference: the sweep uninterrupted.
    run_ok(cli().args([
        "sweep",
        "--spec",
        &spec,
        "--out",
        reference_dir.to_str().unwrap(),
        "--threads",
        "1",
    ]));
    let reference = result_files(&reference_dir);
    assert_eq!(reference.len(), 3, "smoke spec expands to 3 scenarios");

    // Interrupted: abort the process after one journaled completion.
    let killed = cli()
        .args([
            "sweep",
            "--spec",
            &spec,
            "--out",
            chaos_dir.to_str().unwrap(),
            "--threads",
            "1",
            "--chaos-abort-after",
            "1",
        ])
        .output()
        .expect("failed to launch rcoal-cli");
    assert!(
        !killed.status.success(),
        "the chaos abort must kill the process"
    );
    let store = chaos_dir.join("cache");
    assert!(
        store.join("sweep-journal.jsonl").exists(),
        "the journal survives the abort"
    );
    let journaled = std::fs::read_dir(&store)
        .unwrap()
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .path()
                .extension()
                .is_some_and(|x| x == "json")
        })
        .count();
    assert!(
        journaled >= 1,
        "at least the aborting run's entry was persisted"
    );

    // The store must audit clean even after a hard abort.
    run_ok(cli().args(["cache", "verify", store.to_str().unwrap()]));

    // Resume: completes the sweep, re-simulating only the remainder.
    let resumed = run_ok(cli().args([
        "sweep",
        "--spec",
        &spec,
        "--out",
        chaos_dir.to_str().unwrap(),
        "--threads",
        "1",
        "--resume",
        "true",
    ]));
    let stdout = String::from_utf8_lossy(&resumed.stdout);
    assert!(
        stdout.contains("1 run(s) replayed from a previous sweep"),
        "the resume must serve the journaled run without redoing it:\n{stdout}"
    );
    assert!(
        stdout.contains("served 3 run(s): 2 simulated"),
        "only the un-journaled remainder simulates:\n{stdout}"
    );

    // The acceptance bar: resumed results byte-identical to reference.
    let resumed_files = result_files(&chaos_dir);
    assert_eq!(
        resumed_files.keys().collect::<Vec<_>>(),
        reference.keys().collect::<Vec<_>>(),
        "same result set"
    );
    for (name, bytes) in &reference {
        assert_eq!(
            &resumed_files[name], bytes,
            "{name} differs between reference and resumed sweep"
        );
    }

    // A second resume is a pure replay: zero simulations.
    let replay = run_ok(cli().args([
        "sweep",
        "--spec",
        &spec,
        "--out",
        chaos_dir.to_str().unwrap(),
        "--resume",
        "true",
    ]));
    let stdout = String::from_utf8_lossy(&replay.stdout);
    assert!(
        stdout.contains("served 3 run(s): 0 simulated"),
        "fully-journaled sweep must not simulate:\n{stdout}"
    );

    std::fs::remove_dir_all(&reference_dir).unwrap();
    std::fs::remove_dir_all(&chaos_dir).unwrap();
}

#[test]
fn chaos_panic_sweep_never_loses_runs() {
    let out_dir = temp_dir("panics");
    let spec = spec_path();

    // Panic injection at period 2 with the default retry budget: the
    // sweep must finish (exit 0) with every scenario either resolved or
    // explicitly quarantined in the index — nothing missing.
    let out = run_ok(cli().args([
        "sweep",
        "--spec",
        &spec,
        "--out",
        out_dir.to_str().unwrap(),
        "--threads",
        "1",
        "--chaos-seed",
        "11",
        "--chaos-panic-period",
        "2",
    ]));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("served 3 run(s)"), "{stdout}");

    let index = std::fs::read_to_string(out_dir.join("index.json")).unwrap();
    let runs = index.matches("\"hash\"").count();
    assert_eq!(runs, 3, "every scenario appears in the index:\n{index}");
    let quarantined = index.matches("\"quarantined\"").count();
    let with_result = index.matches("\"result\":\"results/").count();
    assert_eq!(
        with_result + quarantined,
        3,
        "each run resolved or quarantined, none lost:\n{index}"
    );

    std::fs::remove_dir_all(&out_dir).unwrap();
}
