//! Integration tests for the beyond-the-paper extensions: measurement
//! noise, streaming recovery, scheduler ablation and the standalone-RSS
//! Monte-Carlo correlation.

use rcoal::prelude::*;
use rcoal_attack::{attenuated_correlation, recovery_curve, GaussianNoise};
use rcoal_experiments::figures::rho_monte_carlo;
use rcoal_gpu_sim::SchedulerPolicy;

#[test]
fn noise_attenuates_the_attack_as_predicted() {
    let data = ExperimentConfig::new(CoalescingPolicy::Baseline, 500, 32)
        .with_seed(401)
        .functional_only()
        .run()
        .expect("experiment");
    let k10 = data.true_last_round_key();
    let clean = data.attack_samples(TimingSource::ByteAccesses(0)).unwrap();
    let times: Vec<f64> = clean.iter().map(|s| s.time).collect();
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    let var = times.iter().map(|t| (t - mean).powi(2)).sum::<f64>() / times.len() as f64;

    let attack = Attack::baseline(32);
    let clean_corr = attack
        .recover_byte(&clean, 0)
        .unwrap()
        .correlation_of(k10[0]);
    assert!(clean_corr > 0.99, "clean channel is exact: {clean_corr}");

    // 3x-signal noise: prediction says corr drops to ~1/sqrt(10).
    let sigma = 3.0 * var.sqrt();
    let noisy = GaussianNoise::new(sigma, 77).unwrap().applied(&clean);
    let noisy_corr = attack
        .recover_byte(&noisy, 0)
        .unwrap()
        .correlation_of(k10[0]);
    let predicted = attenuated_correlation(clean_corr, var, sigma).unwrap();
    assert!(
        (noisy_corr - predicted).abs() < 0.1,
        "measured {noisy_corr} vs predicted {predicted}"
    );
    assert!(noisy_corr < clean_corr * 0.5);
}

#[test]
fn heavy_noise_defeats_recovery_at_small_n() {
    let data = ExperimentConfig::new(CoalescingPolicy::Baseline, 150, 32)
        .with_seed(402)
        .functional_only()
        .run()
        .expect("experiment");
    let k10 = data.true_last_round_key();
    let clean = data.attack_samples(TimingSource::ByteAccesses(0)).unwrap();
    let times: Vec<f64> = clean.iter().map(|s| s.time).collect();
    let sd = {
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        (times.iter().map(|t| (t - mean).powi(2)).sum::<f64>() / times.len() as f64).sqrt()
    };
    let attack = Attack::baseline(32);
    assert_eq!(
        attack.recover_byte(&clean, 0).unwrap().rank_of(k10[0]),
        0,
        "clean channel recovers at 150 samples"
    );
    // 30x-signal noise needs ~30^2 * 11 samples; 150 is hopeless.
    let noisy = GaussianNoise::new(30.0 * sd, 78).unwrap().applied(&clean);
    let rank = attack.recover_byte(&noisy, 0).unwrap().rank_of(k10[0]);
    assert!(rank > 3, "30x noise should bury the signal, rank {rank}");
}

#[test]
fn recovery_curve_matches_batch_at_each_checkpoint() {
    let data = ExperimentConfig::new(CoalescingPolicy::fss(4).expect("valid"), 120, 32)
        .with_seed(403)
        .functional_only()
        .run()
        .expect("experiment");
    let samples = data.attack_samples(TimingSource::ByteAccesses(0)).unwrap();
    let attack = Attack::against(data.policy, 32);
    let curve = recovery_curve(&attack, &samples, 0, &[40, 120]).unwrap();
    for (n, streamed) in curve {
        let batch = attack.recover_byte(&samples[..n], 0).unwrap();
        assert_eq!(streamed.best_guess, batch.best_guess, "n = {n}");
        for m in 0..256 {
            assert!(
                (streamed.correlations[m] - batch.correlations[m]).abs() < 1e-9,
                "n = {n}, guess {m}"
            );
        }
    }
}

#[test]
fn scheduler_choice_never_changes_access_counts() {
    for policy in [
        CoalescingPolicy::Baseline,
        CoalescingPolicy::rss_rts(4).expect("valid"),
    ] {
        let run = |sched: SchedulerPolicy| {
            let gpu = GpuConfig {
                scheduler: sched,
                ..GpuConfig::paper()
            };
            ExperimentConfig::new(policy, 3, 128)
                .with_seed(404)
                .with_gpu(gpu)
                .run()
                .expect("experiment")
        };
        let gto = run(SchedulerPolicy::Gto);
        let lrr = run(SchedulerPolicy::Lrr);
        assert_eq!(gto.total_accesses, lrr.total_accesses, "{policy}");
        assert_eq!(gto.last_round_accesses, lrr.last_round_accesses);
        assert_eq!(gto.ciphertexts, lrr.ciphertexts);
        // Timing may differ, but both must complete and stay positive.
        assert!(gto.mean_total_cycles().unwrap() > 0.0);
        assert!(lrr.mean_total_cycles().unwrap() > 0.0);
    }
}

#[test]
fn standalone_rss_rho_sits_between_the_analytic_columns() {
    // Table II gives FSS+RTS and RSS+RTS; standalone RSS randomizes only
    // sizes (threads stay in order), so its replay correlation should be
    // higher than RSS+RTS's at the same M (less randomness to mismatch)
    // and far below FSS's 1.0.
    let model = SecurityModel::default();
    for m in [4usize, 8] {
        let rss = rho_monte_carlo(CoalescingPolicy::rss(m).expect("valid"), 30_000, 405).unwrap();
        let rss_rts = model.rho(Mechanism::RssRts, m);
        assert!(
            rss > rss_rts - 0.02,
            "M={m}: standalone RSS ({rss:.3}) should not be below RSS+RTS ({rss_rts:.3})"
        );
        assert!(
            rss < 0.9,
            "M={m}: RSS must be far from deterministic: {rss:.3}"
        );
    }
}

#[test]
fn monte_carlo_rho_agrees_with_analytics_for_rts_mechanisms() {
    let model = SecurityModel::default();
    let mc = rho_monte_carlo(CoalescingPolicy::fss_rts(4).expect("valid"), 40_000, 406).unwrap();
    let analytic = model.rho(Mechanism::FssRts, 4);
    assert!(
        (mc - analytic).abs() < 0.03,
        "MC {mc:.3} vs analytic {analytic:.3}"
    );
}

#[test]
fn mshrs_reopen_the_channel_disabled_coalescing_closed() {
    // The headline of the MSHR ablation: with coalescing disabled, MSHR
    // merging makes the per-load memory traffic equal the number of
    // distinct blocks again, so the attacker's correlation returns.
    let rows = rcoal_experiments::figures::ablation_mshr(250, 407).expect("simulation");
    assert_eq!(rows.len(), 3);
    let disabled = &rows[1];
    let with_mshr = &rows[2];
    assert!(
        disabled.corr_correct.abs() < 0.15,
        "no-coalescing, no-MSHR must stay flat: {}",
        disabled.corr_correct
    );
    assert!(
        with_mshr.corr_correct > disabled.corr_correct + 0.1,
        "MSHRs must restore the correlation: {} vs {}",
        with_mshr.corr_correct,
        disabled.corr_correct
    );
    assert!(
        with_mshr.mean_total_cycles < disabled.mean_total_cycles,
        "MSHR merging also restores the performance"
    );
}

#[test]
fn l1_cache_inverts_rather_than_closes_the_channel() {
    let rows = rcoal_experiments::figures::ablation_l1(250, 408).expect("simulation");
    let (no_l1, with_l1) = (&rows[0], &rows[1]);
    assert!(
        no_l1.corr_correct > 0.1,
        "bypass config leaks: {}",
        no_l1.corr_correct
    );
    assert_eq!(no_l1.l1_hits_per_plaintext, 0.0);
    // With L1: argmax recovery fails ...
    assert!(with_l1.rank > 128, "rank {}", with_l1.rank);
    // ... but the correct guess is strongly anti-correlated — the leak
    // moved into the cache-miss overlap pattern.
    assert!(
        with_l1.corr_correct < -0.2,
        "expected an inverted channel, corr {}",
        with_l1.corr_correct
    );
    assert!(with_l1.l1_hits_per_plaintext > 1000.0);
    assert!(with_l1.mean_total_cycles < no_l1.mean_total_cycles);
}
