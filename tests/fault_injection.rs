//! Fault-injection integration: the experiment pipeline under injected
//! DRAM/interconnect faults.
//!
//! Three properties are pinned down end-to-end:
//!
//! 1. **Typed termination** — arbitrary seeded [`FaultPlan`]s never
//!    panic the pipeline; every run ends in `Ok`, `Stalled`, or
//!    `CycleLimit` (ISSUE: proptest-style fault coverage).
//! 2. **Policy-determinism of security statistics** — faults perturb
//!    timing only, so coalesced-access counts are bit-identical with and
//!    without faults at the same seed.
//! 3. **Attenuation law** — Gaussian DRAM reply jitter degrades the
//!    baseline attack's correct-guess correlation consistent with the
//!    `ρ' = ρ·√(v/(v+σ²))` model from `rcoal_attack::noise` (Eq. 4).

use rcoal::prelude::*;
use rcoal_attack::attenuated_correlation;
use rcoal_rng::{Rng, SeedableRng, StdRng};

fn timed(n: usize, seed: u64, faults: FaultPlan) -> Result<ExperimentData, ExperimentError> {
    ExperimentConfig::new(CoalescingPolicy::Baseline, n, 32)
        .with_seed(seed)
        .with_faults(faults)
        .run()
}

/// Draws a random-but-valid fault plan: mixed jitter kinds, bounded drop
/// rates with small retry budgets, occasional backpressure bursts.
fn arb_plan(rng: &mut StdRng) -> FaultPlan {
    let seed = rng.gen_range(0u64..u64::MAX);
    let mut plan = FaultPlan::seeded(seed);
    plan = match rng.gen_range(0u32..3) {
        0 => plan,
        1 => plan.with_jitter(ReplyJitter::Uniform {
            min: rng.gen_range(0u64..4),
            max: rng.gen_range(4u64..40),
        }),
        _ => plan.with_jitter(ReplyJitter::Gaussian {
            sigma: rng.gen_range(0.0f64..20.0),
        }),
    };
    if rng.gen_bool(0.5) {
        // Retry budget >= 1 keeps drops recoverable (rate < 1).
        plan = plan.with_drop(rng.gen_range(0.0f64..0.3), rng.gen_range(1u32..5));
    }
    if rng.gen_bool(0.4) {
        plan = plan.with_backpressure(rng.gen_range(0.0f64..0.01), rng.gen_range(1u64..16));
    }
    if rng.gen_bool(0.3) {
        plan = plan.with_mc_jitter(
            rng.gen_range(0usize..6),
            ReplyJitter::Uniform { min: 0, max: 100 },
        );
    }
    plan
}

#[test]
fn random_fault_plans_terminate_with_typed_results() {
    let mut rng = StdRng::seed_from_u64(0xfa_0171);
    for case in 0..12 {
        let plan = arb_plan(&mut rng);
        plan.validate().expect("arb_plan only draws valid knobs");
        match timed(3, 900 + case, plan.clone()) {
            Ok(data) => assert_eq!(data.len(), 3),
            Err(ExperimentError::Sim(SimError::Stalled { diagnostic, .. })) => {
                assert!(!diagnostic.is_empty(), "case {case}: empty diagnostic")
            }
            Err(ExperimentError::Sim(SimError::CycleLimit { .. })) => {}
            Err(other) => panic!("case {case} under {plan:?}: unexpected error {other}"),
        }
    }
}

#[test]
fn recoverable_drops_still_complete() {
    // Every reply has a 30% drop chance but a generous retry budget, so
    // all warps eventually drain and the run succeeds — just slower.
    let plan = FaultPlan::seeded(21).with_drop(0.3, 16);
    let faulted = timed(4, 31, plan).expect("retransmits recover every drop");
    let clean = timed(4, 31, FaultPlan::none()).expect("clean run");
    assert!(
        faulted.mean_total_cycles().expect("timing run")
            > clean.mean_total_cycles().expect("timing run"),
        "retransmitted requests must cost cycles"
    );
}

#[test]
fn lost_replies_surface_as_a_stalled_diagnostic() {
    // Zero retry budget + certain drop: the first dropped reply wedges
    // its warp forever, which the watchdog must convert into a typed
    // `Stalled` instead of burning cycles to the configured limit.
    let err = timed(2, 41, FaultPlan::seeded(5).with_drop(1.0, 0))
        .expect_err("a permanently lost reply cannot complete");
    match &err {
        ExperimentError::Sim(SimError::Stalled {
            outstanding,
            diagnostic,
            ..
        }) => {
            assert!(*outstanding > 0, "stall must report outstanding replies");
            assert!(
                diagnostic.contains("lost"),
                "diagnostic should name the lost replies: {diagnostic}"
            );
        }
        other => panic!("expected a Stalled sim error, got {other}"),
    }
    // The source chain preserves the simulator error for callers that
    // walk `std::error::Error`.
    let source = std::error::Error::source(&err).expect("chained source");
    assert!(source.to_string().contains("simulation stalled"));
}

#[test]
fn timing_faults_leave_access_counts_policy_deterministic() {
    // The coalescer counts accesses at issue, before any fault fires:
    // the attacker-visible access statistics depend only on (policy,
    // seed), never on the fault plan. This is what makes fault sweeps
    // interpretable — faults attack the *measurement*, not the channel.
    let jitter = FaultPlan::seeded(9)
        .with_jitter(ReplyJitter::Gaussian { sigma: 25.0 })
        .with_backpressure(0.002, 8);
    for policy in [
        CoalescingPolicy::Baseline,
        CoalescingPolicy::rss_rts(4).expect("valid"),
    ] {
        let run = |faults: FaultPlan| {
            ExperimentConfig::new(policy, 4, 32)
                .with_seed(77)
                .with_faults(faults)
                .run()
                .expect("experiment")
        };
        let clean = run(FaultPlan::none());
        let faulted = run(jitter.clone());
        assert_eq!(clean.total_accesses, faulted.total_accesses, "{policy}");
        assert_eq!(
            clean.last_round_accesses, faulted.last_round_accesses,
            "{policy}"
        );
        assert_eq!(
            clean.last_round_accesses_by_byte,
            faulted.last_round_accesses_by_byte
        );
        assert_eq!(clean.ciphertexts, faulted.ciphertexts);
        // ... while the timing itself must differ under heavy jitter.
        assert_ne!(
            clean.total_cycles, faulted.total_cycles,
            "{policy}: 25-cycle reply jitter must perturb timing"
        );
    }
}

fn variance(xs: &[f64]) -> f64 {
    let m = xs.iter().sum::<f64>() / xs.len() as f64;
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64
}

#[test]
fn dram_jitter_attenuates_attacker_correlation() {
    // The ISSUE acceptance test: injected DRAM jitter of (empirical)
    // variance σ² must scale the baseline attack's correct-guess
    // correlation by ~√(v/(v+σ²)) — the same law `attenuated_correlation`
    // models for explicit measurement noise.
    let n = 300;
    let seed = 0x0a77e;
    let clean = timed(n, seed, FaultPlan::none()).expect("clean run");

    let times = |d: &ExperimentData| -> Vec<f64> {
        d.last_round_cycles
            .as_ref()
            .expect("timing run")
            .iter()
            .map(|&c| c as f64)
            .collect()
    };
    let v = variance(&times(&clean));

    let correct = clean.true_last_round_key()[0];
    let attack = Attack::baseline(32);
    let corr = |d: &ExperimentData| {
        attack
            .recover_byte(
                &d.attack_samples(TimingSource::LastRoundCycles)
                    .expect("timing run"),
                0,
            )
            .expect("samples present")
            .correlation_of(correct)
    };
    let rho_clean = corr(&clean);
    // Byte 0's signal rides on the other fifteen bytes' accesses plus
    // scheduler noise, so the clean attack correlation sits around ~0.2
    // at this scale (cf. the paper's Figure 6 magnitudes).
    assert!(
        rho_clean > 0.15,
        "the clean channel must leak for attenuation to be measurable: {rho_clean}"
    );

    // Mid-curve (sigma_eff comparable to the signal sd) and
    // deep-attenuation points.
    let mut prev = rho_clean;
    for sigma in [4.0, 60.0] {
        let noisy = timed(
            n,
            seed,
            FaultPlan::seeded(13).with_jitter(ReplyJitter::Gaussian { sigma }),
        )
        .expect("jitter never wedges a warp");
        // Per-reply jitter accumulates along each launch's critical
        // path, so the per-sample noise deviation is measured, not
        // assumed equal to the per-reply sigma.
        let sigma_eff = (variance(&times(&noisy)) - v).max(0.0).sqrt();
        assert!(
            sigma_eff > 0.5 * v.sqrt(),
            "sigma {sigma} should widen the timing spread: sigma_eff {sigma_eff}, sd {}",
            v.sqrt()
        );
        let rho_noisy = corr(&noisy);
        let predicted = attenuated_correlation(rho_clean, v, sigma_eff).expect("positive variance");
        eprintln!(
            "attenuation sigma {sigma}: clean rho {rho_clean:.3}, noisy rho {rho_noisy:.3}, \
             predicted {predicted:.3} (signal sd {:.1}, sigma_eff {sigma_eff:.1})",
            v.sqrt()
        );
        assert!(
            rho_noisy < rho_clean,
            "jitter must weaken the attack: {rho_noisy} vs clean {rho_clean}"
        );
        assert!(
            (rho_noisy - predicted).abs() < 0.15,
            "sigma {sigma}: measured {rho_noisy} vs Eq.4 prediction {predicted} \
             (clean {rho_clean}, v {v:.1}, sigma_eff {sigma_eff:.1})"
        );
        assert!(
            rho_noisy <= prev + 0.05,
            "attenuation should be monotone in sigma: {rho_noisy} after {prev}"
        );
        prev = rho_noisy;
    }
}
