//! The deterministic-parallelism contract: the number of worker threads
//! must be unobservable in every experiment artifact.
//!
//! Each launch derives its seed from its index and results are collected
//! by index, so `ExperimentData` — launch stats, ciphertexts, functional
//! counts — must be bit-identical whether the launch sweep runs on one
//! thread or many. Same for the attack's 256-guess correlation sweep.

use rcoal_attack::Attack;
use rcoal_core::CoalescingPolicy;
use rcoal_experiments::{ExperimentConfig, ExperimentData, TimingSource};

const SEED: u64 = 0xdefd;

/// Pinned thread counts: spanning sequential, undersubscribed, and
/// oversubscribed pools without reading the host's core count, so the
/// test exercises identical schedules on every machine (and stays
/// meaningful inside constrained CI runners).
fn thread_counts() -> Vec<usize> {
    vec![1, 2, 4, 8]
}

fn policies() -> Vec<CoalescingPolicy> {
    vec![
        CoalescingPolicy::Baseline,
        CoalescingPolicy::fss(4).expect("4 divides 32"),
        CoalescingPolicy::rss_rts(8).expect("valid subwarp count"),
    ]
}

fn run_timing(policy: CoalescingPolicy, threads: usize) -> ExperimentData {
    ExperimentConfig::new(policy, 12, 32)
        .with_seed(SEED)
        .with_threads(threads)
        .run()
        .expect("timing run succeeds")
}

fn run_functional(policy: CoalescingPolicy, threads: usize) -> ExperimentData {
    ExperimentConfig::new(policy, 12, 32)
        .with_seed(SEED)
        .with_threads(threads)
        .functional_only()
        .run()
        .expect("functional run succeeds")
}

#[test]
fn timing_experiments_are_bit_identical_across_thread_counts() {
    for policy in policies() {
        let reference = run_timing(policy, 1);
        for threads in thread_counts() {
            let data = run_timing(policy, threads);
            assert_eq!(
                data, reference,
                "{policy} timing data diverged at threads={threads}"
            );
        }
    }
}

#[test]
fn functional_experiments_are_bit_identical_across_thread_counts() {
    for policy in policies() {
        let reference = run_functional(policy, 1);
        for threads in thread_counts() {
            let data = run_functional(policy, threads);
            assert_eq!(
                data, reference,
                "{policy} functional data diverged at threads={threads}"
            );
        }
    }
}

#[test]
fn recover_key_parallel_sweep_matches_sequential() {
    // 500 samples on the baseline policy: the attack succeeds, so any
    // nondeterminism in the parallel guess sweep would be visible in the
    // recovered key, the per-byte ranks, or the raw correlations.
    let data = ExperimentConfig::new(CoalescingPolicy::Baseline, 500, 32)
        .with_seed(SEED)
        .functional_only()
        .run()
        .expect("baseline run succeeds");
    let samples = data
        .attack_samples(TimingSource::LastRoundAccesses)
        .expect("functional runs record last-round accesses");
    let k10 = data.true_last_round_key();

    let sequential = Attack::baseline(32)
        .with_threads(Some(1))
        .recover_key(&samples)
        .expect("sequential recovery succeeds");
    for threads in thread_counts() {
        let parallel = Attack::baseline(32)
            .with_threads(Some(threads))
            .recover_key(&samples)
            .expect("parallel recovery succeeds");
        for (j, &true_byte) in k10.iter().enumerate() {
            assert_eq!(
                parallel.bytes[j].best_guess, sequential.bytes[j].best_guess,
                "byte {j} guess diverged at threads={threads}"
            );
            assert_eq!(
                parallel.bytes[j].rank_of(true_byte),
                sequential.bytes[j].rank_of(true_byte),
                "byte {j} rank diverged at threads={threads}"
            );
            assert_eq!(
                parallel.bytes[j].correlations, sequential.bytes[j].correlations,
                "byte {j} correlations diverged at threads={threads}"
            );
        }
    }
    // And the clean channel really recovers the key, so the comparison
    // above exercised a meaningful result.
    assert_eq!(sequential.outcome(&k10).num_correct, 16);
}
