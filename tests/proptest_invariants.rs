//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rcoal::prelude::*;
use rcoal_aes::last_round_index;
use rcoal_attack::pearson;
use rcoal_theory::{stirling2_exact, Occupancy};

/// Any of the six policies, with a valid subwarp count for a 32-thread
/// warp.
fn any_policy() -> impl Strategy<Value = CoalescingPolicy> {
    prop_oneof![
        Just(CoalescingPolicy::Baseline),
        Just(CoalescingPolicy::Disabled),
        (0u32..6).prop_map(|k| CoalescingPolicy::fss(1 << k).expect("divisor")),
        (1usize..=32).prop_map(|m| CoalescingPolicy::rss(m).expect("in range")),
        (0u32..6).prop_map(|k| CoalescingPolicy::fss_rts(1 << k).expect("divisor")),
        (1usize..=32).prop_map(|m| CoalescingPolicy::rss_rts(m).expect("in range")),
    ]
}

proptest! {
    // ---------------------------------------------------------- policies

    #[test]
    fn assignment_always_partitions_the_warp(
        policy in any_policy(),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = policy.assignment(32, &mut rng).expect("32-thread warp");
        prop_assert_eq!(a.warp_size(), 32);
        let sizes = a.sizes();
        prop_assert_eq!(sizes.len(), policy.num_subwarps(32));
        prop_assert_eq!(sizes.iter().sum::<usize>(), 32);
        prop_assert!(sizes.iter().all(|&s| s >= 1), "no empty subwarp");
        // lanes_by_subwarp is a partition of 0..32.
        let mut lanes: Vec<usize> = a.lanes_by_subwarp().into_iter().flatten().collect();
        lanes.sort_unstable();
        prop_assert_eq!(lanes, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_policies_ignore_the_rng(
        m_exp in 0u32..6,
        s1 in any::<u64>(),
        s2 in any::<u64>(),
    ) {
        let policy = CoalescingPolicy::fss(1 << m_exp).expect("divisor");
        let a = policy.assignment(32, &mut StdRng::seed_from_u64(s1)).expect("valid");
        let b = policy.assignment(32, &mut StdRng::seed_from_u64(s2)).expect("valid");
        prop_assert_eq!(a, b);
    }

    // --------------------------------------------------------- coalescer

    #[test]
    fn coalesced_count_is_bounded(
        policy in any_policy(),
        seed in any::<u64>(),
        raw_addrs in prop::collection::vec(prop::option::of(0u64..4096), 32),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = policy.assignment(32, &mut rng).expect("valid");
        let coalescer = Coalescer::new();
        let n = coalescer.count_accesses(&a, &raw_addrs);
        let active = raw_addrs.iter().filter(|x| x.is_some()).count();
        // Distinct blocks over the whole warp is a lower bound; active
        // lanes an upper bound.
        let mut blocks: Vec<u64> = raw_addrs.iter().flatten().map(|x| x / 64).collect();
        blocks.sort_unstable();
        blocks.dedup();
        prop_assert!(n >= blocks.len());
        prop_assert!(n <= active);
    }

    #[test]
    fn splitting_subwarps_never_reduces_accesses(
        seed in any::<u64>(),
        raw_addrs in prop::collection::vec(prop::option::of(0u64..4096), 32),
    ) {
        // FSS(M) counts are monotone in M for nested splits (1 | 2 | 4 ...).
        let coalescer = Coalescer::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut prev = 0usize;
        for k in 0..6 {
            let policy = CoalescingPolicy::fss(1 << k).expect("divisor");
            let a = policy.assignment(32, &mut rng).expect("valid");
            let n = coalescer.count_accesses(&a, &raw_addrs);
            prop_assert!(n >= prev, "FSS({}) gave {} < FSS({}) {}", 1 << k, n, 1 << (k - 1), prev);
            prev = n;
        }
    }

    #[test]
    fn lane_masks_cover_exactly_the_active_lanes(
        policy in any_policy(),
        seed in any::<u64>(),
        raw_addrs in prop::collection::vec(prop::option::of(0u64..4096), 32),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = policy.assignment(32, &mut rng).expect("valid");
        let result = Coalescer::new().coalesce(&a, &raw_addrs);
        let mut covered = 0u64;
        for acc in result.accesses() {
            prop_assert_eq!(covered & acc.lane_mask, 0, "each lane served once");
            covered |= acc.lane_mask;
            prop_assert_eq!(acc.block_addr % 64, 0, "block aligned");
        }
        let expected: u64 = raw_addrs
            .iter()
            .enumerate()
            .filter(|(_, x)| x.is_some())
            .map(|(i, _)| 1u64 << i)
            .sum();
        prop_assert_eq!(covered, expected);
    }

    // --------------------------------------------------------------- AES

    #[test]
    fn aes_decrypt_inverts_encrypt(key in any::<[u8; 16]>(), pt in any::<[u8; 16]>()) {
        let aes = Aes128::new(&key);
        prop_assert_eq!(aes.decrypt_block(aes.encrypt_block(pt)), pt);
    }

    #[test]
    fn aes_equation_3_invariant(key in any::<[u8; 16]>(), pt in any::<[u8; 16]>()) {
        // t_j == INV_SBOX[c_j ^ k_j] — the relation the attack exploits.
        let aes = Aes128::new(&key);
        let (ct, trace) = aes.encrypt_block_traced(pt);
        let k10 = aes.last_round_key();
        let t = trace.last_round_indices();
        for j in 0..16 {
            prop_assert_eq!(t[j], last_round_index(ct[j], k10[j]));
        }
    }

    #[test]
    fn aes_is_injective_per_key(key in any::<[u8; 16]>(), a in any::<[u8; 16]>(), b in any::<[u8; 16]>()) {
        let aes = Aes128::new(&key);
        if a != b {
            prop_assert_ne!(aes.encrypt_block(a), aes.encrypt_block(b));
        }
    }

    // --------------------------------------------------------- statistics

    #[test]
    fn pearson_is_bounded_and_affine_invariant(
        xs in prop::collection::vec(-1e3f64..1e3, 3..40),
        scale in 0.1f64..100.0,
        shift in -1e3f64..1e3,
    ) {
        let ys: Vec<f64> = xs.iter().map(|x| x * 2.0 + 1.0).collect();
        let r = pearson(&xs, &ys);
        prop_assert!((-1.0001..=1.0001).contains(&r));
        let xs_t: Vec<f64> = xs.iter().map(|x| x * scale + shift).collect();
        let r_t = pearson(&xs_t, &ys);
        prop_assert!((r - r_t).abs() < 1e-6);
    }

    // ------------------------------------------------------------- theory

    #[test]
    fn occupancy_dp_equals_stirling_form(m in 1usize..20, n in 1usize..20) {
        let dp = Occupancy::new(m, n);
        let st = Occupancy::from_stirling(m, n);
        for i in 0..=m {
            prop_assert!((dp.p(i) - st.p(i)).abs() < 1e-9);
        }
    }

    #[test]
    fn stirling_recurrence(n in 1usize..25, k in 1usize..25) {
        prop_assume!(k <= n);
        let lhs = stirling2_exact(n, k);
        let rhs = (k as u128) * stirling2_exact(n - 1, k) + stirling2_exact(n - 1, k - 1);
        prop_assert_eq!(lhs, rhs);
    }

    // -------------------------------------------------------- experiments

    #[test]
    fn functional_runs_are_seed_deterministic(seed in any::<u64>()) {
        let policy = CoalescingPolicy::rss_rts(4).expect("valid");
        let run = || {
            ExperimentConfig::new(policy, 2, 32)
                .with_seed(seed)
                .functional_only()
                .run()
                .expect("experiment")
        };
        let (a, b) = (run(), run());
        prop_assert_eq!(a.last_round_accesses, b.last_round_accesses);
        prop_assert_eq!(a.ciphertexts, b.ciphertexts);
    }
}

// Non-proptest helpers exercised once: the facade's prelude should expose
// everything a downstream user needs.
#[test]
fn prelude_exposes_the_public_api() {
    let _ = CoalescingPolicy::Baseline;
    let _ = Coalescer::new();
    let _ = GpuConfig::default();
    let _: Vec<rcoal_theory::Table2Row> = table2();
    let _ = RCoalScore::security_oriented();
    let _ = NumSubwarps::new(4, 32).expect("valid");
    let _ = SizeDistribution::Skewed;
}

// ---------------------------------------------------------------------
// Cross-component property: for arbitrary kernels, the cycle simulator's
// access accounting equals direct coalescer counting with the same
// per-warp assignments.

use rcoal_gpu_sim::{GpuSimulator, TraceInstr, TraceKernel, WarpTrace};

fn arb_trace() -> impl Strategy<Value = WarpTrace> {
    let instr = prop_oneof![
        (1u32..20).prop_map(TraceInstr::compute),
        (
            prop::collection::vec(prop::option::of(0u64..16384), 8),
            0u16..4
        )
            .prop_map(|(addrs, tag)| TraceInstr::load_tagged(addrs, tag)),
        (1u16..4).prop_map(|round| TraceInstr::RoundMark { round }),
    ];
    prop::collection::vec(instr, 0..12).prop_map(WarpTrace::from_instrs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn simulator_access_counts_match_direct_coalescing(
        traces in prop::collection::vec(arb_trace(), 1..4),
        seed in any::<u64>(),
        m_exp in 0u32..4,
    ) {
        let mut gpu = GpuConfig::tiny();
        gpu.warp_size = 8;
        let policy = CoalescingPolicy::fss_rts(1 << m_exp).map_err(|_| TestCaseError::reject("m"))?;
        // fss_rts over an 8-thread warp requires m | 8.
        prop_assume!(8 % (1usize << m_exp) == 0);
        let kernel = TraceKernel::new(traces.clone(), 8);
        let stats = GpuSimulator::new(gpu.clone())
            .run(&kernel, policy, seed)
            .expect("simulation");

        // Reproduce the launch's assignments: one draw per warp in order.
        let mut rng = StdRng::seed_from_u64(seed);
        let coalescer = Coalescer::new();
        let mut expected_total = 0u64;
        for trace in &traces {
            let a = policy.assignment(8, &mut rng).expect("valid");
            for instr in trace.instrs() {
                if let TraceInstr::Load { addrs, .. } = instr {
                    expected_total += coalescer.count_accesses(&a, addrs) as u64;
                }
            }
        }
        prop_assert_eq!(stats.total_accesses, expected_total);
        // Tag accounting sums to the total.
        prop_assert_eq!(stats.accesses_by_tag.iter().sum::<u64>(), stats.total_accesses);
        // Every warp finished within the measured kernel time.
        for &f in &stats.warp_finish_cycle {
            prop_assert!(f <= stats.total_cycles);
        }
    }

    #[test]
    fn public_types_roundtrip_through_serde(
        policy in any_policy(),
        seed in any::<u64>(),
    ) {
        let json = serde_json_like(&policy);
        // serde_json isn't a dependency; use the bincode-free trick of
        // round-tripping through serde's test-friendly format: we encode
        // to a string via Debug-stable serde_json replacement... simpler:
        // assert Clone+PartialEq semantics of the drawn assignment.
        let mut rng = StdRng::seed_from_u64(seed);
        let a = policy.assignment(32, &mut rng).expect("valid");
        let b = a.clone();
        prop_assert_eq!(a, b);
        prop_assert!(!json.is_empty());
    }
}

/// Poor-man's serialization check without a JSON dependency: the Debug
/// form is non-empty and stable for equal values.
fn serde_json_like(p: &CoalescingPolicy) -> String {
    format!("{p:?}")
}
