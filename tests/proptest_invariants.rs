//! Property-style tests over the core data structures and invariants.
//!
//! Formerly driven by `proptest`; rewritten as seeded exhaustive/random
//! sweeps over the same input spaces so the suite builds with no
//! external dependencies. Each case draws its inputs from
//! `rcoal_rng::StdRng`, so failures are reproducible from the seeds
//! hard-wired below.

use rcoal::prelude::*;
use rcoal_aes::last_round_index;
use rcoal_attack::pearson;
use rcoal_rng::{Rng, SeedableRng, StdRng};
use rcoal_theory::{stirling2_exact, Occupancy};

/// Deterministic pool of policies covering all six mechanisms with a
/// spread of subwarp counts valid for a 32-thread warp.
fn policy_pool() -> Vec<CoalescingPolicy> {
    let mut pool = vec![CoalescingPolicy::Baseline, CoalescingPolicy::Disabled];
    for k in 0..6 {
        pool.push(CoalescingPolicy::fss(1 << k).expect("divisor"));
        pool.push(CoalescingPolicy::fss_rts(1 << k).expect("divisor"));
    }
    for m in [1, 2, 3, 5, 8, 13, 17, 27, 32] {
        pool.push(CoalescingPolicy::rss(m).expect("in range"));
        pool.push(CoalescingPolicy::rss_rts(m).expect("in range"));
    }
    pool
}

/// 32 optional addresses in `[0, 4096)`, ~1/5 lanes inactive.
fn arb_addrs(rng: &mut StdRng) -> Vec<Option<u64>> {
    (0..32)
        .map(|_| rng.gen_bool(0.8).then(|| rng.gen_range(0u64..4096)))
        .collect()
}

// ---------------------------------------------------------------- policies

#[test]
fn assignment_always_partitions_the_warp() {
    let mut rng = StdRng::seed_from_u64(0xa551);
    for policy in policy_pool() {
        for _ in 0..16 {
            let seed = rng.gen_range(0u64..u64::MAX);
            let mut draw = StdRng::seed_from_u64(seed);
            let a = policy.assignment(32, &mut draw).expect("32-thread warp");
            assert_eq!(a.warp_size(), 32);
            let sizes = a.sizes();
            assert_eq!(
                sizes.len(),
                policy.num_subwarps(32),
                "{policy:?} seed {seed}"
            );
            assert_eq!(sizes.iter().sum::<usize>(), 32);
            assert!(sizes.iter().all(|&s| s >= 1), "no empty subwarp");
            // lanes_by_subwarp is a partition of 0..32.
            let mut lanes: Vec<usize> = a.lanes_by_subwarp().into_iter().flatten().collect();
            lanes.sort_unstable();
            assert_eq!(lanes, (0..32).collect::<Vec<_>>());
        }
    }
}

#[test]
fn deterministic_policies_ignore_the_rng() {
    let mut rng = StdRng::seed_from_u64(0xde7e);
    for k in 0..6 {
        let policy = CoalescingPolicy::fss(1 << k).expect("divisor");
        for _ in 0..8 {
            let (s1, s2) = (rng.gen_range(0u64..u64::MAX), rng.gen_range(0u64..u64::MAX));
            let a = policy
                .assignment(32, &mut StdRng::seed_from_u64(s1))
                .expect("valid");
            let b = policy
                .assignment(32, &mut StdRng::seed_from_u64(s2))
                .expect("valid");
            assert_eq!(a, b, "FSS({}) must not consult the rng", 1 << k);
        }
    }
}

#[test]
fn policy_display_from_str_round_trip() {
    // parse ∘ to_string = id over the whole policy pool, and the parsed
    // policy renders back to the identical string.
    for policy in policy_pool() {
        let shown = policy.to_string();
        let parsed: CoalescingPolicy = shown.parse().expect("display form parses");
        assert_eq!(parsed, policy, "{shown}");
        assert_eq!(parsed.to_string(), shown);
    }
}

// --------------------------------------------------------------- coalescer

#[test]
fn coalesced_count_is_bounded() {
    let mut rng = StdRng::seed_from_u64(0xc0a1);
    let coalescer = Coalescer::new();
    for policy in policy_pool() {
        for _ in 0..8 {
            let raw_addrs = arb_addrs(&mut rng);
            let a = policy.assignment(32, &mut rng).expect("valid");
            let n = coalescer.count_accesses(&a, &raw_addrs);
            let active = raw_addrs.iter().filter(|x| x.is_some()).count();
            // Distinct blocks over the whole warp is a lower bound; active
            // lanes an upper bound.
            let mut blocks: Vec<u64> = raw_addrs.iter().flatten().map(|x| x / 64).collect();
            blocks.sort_unstable();
            blocks.dedup();
            assert!(n >= blocks.len());
            assert!(n <= active);
        }
    }
}

#[test]
fn splitting_subwarps_never_reduces_accesses() {
    // FSS(M) counts are monotone in M for nested splits (1 | 2 | 4 ...).
    let coalescer = Coalescer::new();
    let mut rng = StdRng::seed_from_u64(0x5b11);
    for _ in 0..32 {
        let raw_addrs = arb_addrs(&mut rng);
        let mut prev = 0usize;
        for k in 0..6 {
            let policy = CoalescingPolicy::fss(1 << k).expect("divisor");
            let a = policy.assignment(32, &mut rng).expect("valid");
            let n = coalescer.count_accesses(&a, &raw_addrs);
            assert!(n >= prev, "FSS({}) gave {n} < {prev}", 1 << k);
            prev = n;
        }
    }
}

#[test]
fn lane_masks_cover_exactly_the_active_lanes() {
    let mut rng = StdRng::seed_from_u64(0x1a2e);
    for policy in policy_pool() {
        for _ in 0..8 {
            let raw_addrs = arb_addrs(&mut rng);
            let a = policy.assignment(32, &mut rng).expect("valid");
            let result = Coalescer::new().coalesce(&a, &raw_addrs);
            let mut covered = 0u64;
            for acc in result.accesses() {
                assert_eq!(covered & acc.lane_mask, 0, "each lane served once");
                covered |= acc.lane_mask;
                assert_eq!(acc.block_addr % 64, 0, "block aligned");
            }
            let expected: u64 = raw_addrs
                .iter()
                .enumerate()
                .filter(|(_, x)| x.is_some())
                .map(|(i, _)| 1u64 << i)
                .sum();
            assert_eq!(covered, expected);
        }
    }
}

// --------------------------------------------------------------------- AES

fn arb_block(rng: &mut StdRng) -> [u8; 16] {
    let mut b = [0u8; 16];
    rng.fill(&mut b);
    b
}

#[test]
fn aes_decrypt_inverts_encrypt() {
    let mut rng = StdRng::seed_from_u64(0xae5);
    for _ in 0..64 {
        let (key, pt) = (arb_block(&mut rng), arb_block(&mut rng));
        let aes = Aes128::new(&key);
        assert_eq!(aes.decrypt_block(aes.encrypt_block(pt)), pt);
    }
}

#[test]
fn aes_equation_3_invariant() {
    // t_j == INV_SBOX[c_j ^ k_j] — the relation the attack exploits.
    let mut rng = StdRng::seed_from_u64(0xe93);
    for _ in 0..64 {
        let (key, pt) = (arb_block(&mut rng), arb_block(&mut rng));
        let aes = Aes128::new(&key);
        let (ct, trace) = aes.encrypt_block_traced(pt);
        let k10 = aes.last_round_key();
        let t = trace.last_round_indices();
        for j in 0..16 {
            assert_eq!(t[j], last_round_index(ct[j], k10[j]));
        }
    }
}

#[test]
fn aes_is_injective_per_key() {
    let mut rng = StdRng::seed_from_u64(0x171);
    for _ in 0..64 {
        let key = arb_block(&mut rng);
        let (a, b) = (arb_block(&mut rng), arb_block(&mut rng));
        let aes = Aes128::new(&key);
        if a != b {
            assert_ne!(aes.encrypt_block(a), aes.encrypt_block(b));
        }
    }
}

// --------------------------------------------------------------- statistics

#[test]
fn pearson_is_bounded_and_affine_invariant() {
    let mut rng = StdRng::seed_from_u64(0x9ea5);
    for _ in 0..64 {
        let n = rng.gen_range(3usize..40);
        let xs: Vec<f64> = (0..n).map(|_| rng.gen_range(-1e3f64..1e3)).collect();
        let scale = rng.gen_range(0.1f64..100.0);
        let shift = rng.gen_range(-1e3f64..1e3);
        let ys: Vec<f64> = xs.iter().map(|x| x * 2.0 + 1.0).collect();
        let r = pearson(&xs, &ys);
        assert!((-1.0001..=1.0001).contains(&r));
        let xs_t: Vec<f64> = xs.iter().map(|x| x * scale + shift).collect();
        let r_t = pearson(&xs_t, &ys);
        assert!((r - r_t).abs() < 1e-6);
    }
}

// ------------------------------------------------------------------- theory

#[test]
fn occupancy_dp_equals_stirling_form() {
    for m in 1usize..20 {
        for n in 1usize..20 {
            let dp = Occupancy::new(m, n);
            let st = Occupancy::from_stirling(m, n);
            for i in 0..=m {
                assert!((dp.p(i) - st.p(i)).abs() < 1e-9, "m={m} n={n} i={i}");
            }
        }
    }
}

#[test]
fn stirling_recurrence() {
    for n in 1usize..25 {
        for k in 1usize..=n {
            let lhs = stirling2_exact(n, k);
            let rhs = (k as u128) * stirling2_exact(n - 1, k) + stirling2_exact(n - 1, k - 1);
            assert_eq!(lhs, rhs, "n={n} k={k}");
        }
    }
}

// -------------------------------------------------------------- experiments

#[test]
fn functional_runs_are_seed_deterministic() {
    let mut rng = StdRng::seed_from_u64(0xf2a7);
    for _ in 0..4 {
        let seed = rng.gen_range(0u64..u64::MAX);
        let policy = CoalescingPolicy::rss_rts(4).expect("valid");
        let run = || {
            ExperimentConfig::new(policy, 2, 32)
                .with_seed(seed)
                .functional_only()
                .run()
                .expect("experiment")
        };
        let (a, b) = (run(), run());
        assert_eq!(a.last_round_accesses, b.last_round_accesses);
        assert_eq!(a.ciphertexts, b.ciphertexts);
    }
}

// Non-random helpers exercised once: the facade's prelude should expose
// everything a downstream user needs.
#[test]
fn prelude_exposes_the_public_api() {
    let _ = CoalescingPolicy::Baseline;
    let _ = Coalescer::new();
    let _ = GpuConfig::default();
    let _: Vec<rcoal_theory::Table2Row> = table2();
    let _ = RCoalScore::security_oriented();
    let _ = NumSubwarps::new(4, 32).expect("valid");
    let _ = SizeDistribution::Skewed;
}

// ---------------------------------------------------------------------
// Cross-component property: for arbitrary kernels, the cycle simulator's
// access accounting equals direct coalescer counting with the same
// per-warp assignments.

use rcoal_gpu_sim::{GpuSimulator, TraceInstr, TraceKernel, WarpTrace};

fn arb_trace(rng: &mut StdRng) -> WarpTrace {
    let n = rng.gen_range(0usize..12);
    let instrs = (0..n)
        .map(|_| match rng.gen_range(0u32..3) {
            0 => TraceInstr::compute(rng.gen_range(1u32..20)),
            1 => {
                let addrs: Vec<Option<u64>> = (0..8)
                    .map(|_| rng.gen_bool(0.75).then(|| rng.gen_range(0u64..16384)))
                    .collect();
                TraceInstr::load_tagged(addrs, rng.gen_range(0u16..4))
            }
            _ => TraceInstr::RoundMark {
                round: rng.gen_range(1u16..4),
            },
        })
        .collect();
    WarpTrace::from_instrs(instrs)
}

#[test]
fn simulator_access_counts_match_direct_coalescing() {
    let mut rng = StdRng::seed_from_u64(0x51ca);
    for case in 0..32 {
        let traces: Vec<WarpTrace> = (0..rng.gen_range(1usize..4))
            .map(|_| arb_trace(&mut rng))
            .collect();
        let seed = rng.gen_range(0u64..u64::MAX);
        // fss_rts over an 8-thread warp requires m | 8, which every
        // power of two up to 8 satisfies.
        let m = 1usize << rng.gen_range(0u32..4);
        let mut gpu = GpuConfig::tiny();
        gpu.warp_size = 8;
        let policy = CoalescingPolicy::fss_rts(m).expect("divisor");
        let kernel = TraceKernel::new(traces.clone(), 8);
        let stats = GpuSimulator::new(gpu.clone())
            .run(&kernel, policy, seed)
            .expect("simulation");

        // Reproduce the launch's assignments: one draw per warp in order.
        let mut draw = StdRng::seed_from_u64(seed);
        let coalescer = Coalescer::new();
        let mut expected_total = 0u64;
        for trace in &traces {
            let a = policy.assignment(8, &mut draw).expect("valid");
            for instr in trace.instrs() {
                if let TraceInstr::Load { addrs, .. } = instr {
                    expected_total += coalescer.count_accesses(&a, addrs) as u64;
                }
            }
        }
        assert_eq!(stats.total_accesses, expected_total, "case {case}");
        // Tag accounting sums to the total.
        assert_eq!(
            stats.accesses_by_tag.iter().sum::<u64>(),
            stats.total_accesses
        );
        // Every warp finished within the measured kernel time.
        for &f in &stats.warp_finish_cycle {
            assert!(f <= stats.total_cycles);
        }
    }
}

#[test]
fn drawn_assignments_are_clone_equal_and_debug_stable() {
    let mut rng = StdRng::seed_from_u64(0xc10e);
    for policy in policy_pool() {
        let debug = format!("{policy:?}");
        assert!(!debug.is_empty());
        let a = policy.assignment(32, &mut rng).expect("valid");
        let b = a.clone();
        assert_eq!(a, b);
    }
}
