//! Golden equivalence for the scenario/sweep refactor: the declarative
//! generators must reproduce the pre-refactor hand-rolled generators
//! byte for byte.
//!
//! Each `legacy_*` function below is an inline copy of the generator as
//! it existed before `figures.rs` was rewritten on top of
//! [`SweepRunner`] — direct `ExperimentConfig` construction with
//! hand-rolled policy loops. They are the golden reference: if a sweep
//! expansion reorders scenarios, a cache hit returns a stale payload, or
//! the scenario→config translation drifts, these comparisons fail with
//! a bit-level diff instead of a silent change in the report.

use rcoal_attack::{pearson, Attack};
use rcoal_core::CoalescingPolicy;
use rcoal_experiments::figures::{
    ablation_l1_with, ablation_mshr, ablation_mshr_with, avg_correct_correlation,
    fig05_last_vs_total, fig06_coalescing_onoff, fig06_coalescing_onoff_with,
    fig07_fss_performance, Fig5Data, Fig6Data, Fig7Row, MshrRow,
};
use rcoal_experiments::{ExperimentConfig, ExperimentError, SweepRunner, TimingSource};
use rcoal_gpu_sim::GpuConfig;
use rcoal_parallel::try_parallel_map;

// The pinned operating point: small enough for debug-mode CI, large
// enough that correlations and ranks are non-degenerate.
const PLAINTEXTS: usize = 10;
const SEED: u64 = 0x90_1d;

// Pinned worker count for the legacy generators: the comparison must
// not depend on the host's core count.
const LEGACY_THREADS: usize = 4;

fn legacy_fig05(num_plaintexts: usize, seed: u64) -> Result<Fig5Data, ExperimentError> {
    let data = ExperimentConfig::new(CoalescingPolicy::Baseline, num_plaintexts, 32)
        .with_seed(seed)
        .run()?;
    let last = data
        .last_round_cycles
        .as_ref()
        .ok_or(ExperimentError::TimingUnavailable {
            what: "legacy_fig05",
        })?;
    let total = data
        .total_cycles
        .as_ref()
        .ok_or(ExperimentError::TimingUnavailable {
            what: "legacy_fig05",
        })?;
    let points: Vec<(u64, u64)> = last.iter().copied().zip(total.iter().copied()).collect();
    let xf: Vec<f64> = last.iter().map(|&v| v as f64).collect();
    let yf: Vec<f64> = total.iter().map(|&v| v as f64).collect();
    Ok(Fig5Data {
        points,
        correlation: pearson(&xf, &yf),
    })
}

fn legacy_fig06(num_plaintexts: usize, seed: u64) -> Result<Fig6Data, ExperimentError> {
    let attack = Attack::baseline(32);

    let on = ExperimentConfig::new(CoalescingPolicy::Baseline, num_plaintexts, 32)
        .with_seed(seed)
        .run()?;
    let k10 = on.true_last_round_key();
    let rec_on = attack.recover_byte(&on.attack_samples(TimingSource::LastRoundCycles)?, 0)?;

    let off = ExperimentConfig::new(CoalescingPolicy::Disabled, num_plaintexts, 32)
        .with_seed(seed)
        .run()?;
    let rec_off = attack.recover_byte(&off.attack_samples(TimingSource::LastRoundCycles)?, 0)?;

    Ok(Fig6Data {
        rank_enabled: rec_on.rank_of(k10[0]),
        rank_disabled: rec_off.rank_of(k10[0]),
        enabled: rec_on.correlations,
        disabled: rec_off.correlations,
        correct_byte: k10[0],
    })
}

fn legacy_fig07(num_plaintexts: usize, seed: u64) -> Result<Vec<Fig7Row>, ExperimentError> {
    let ms = [1usize, 2, 4, 8, 16, 32];
    try_parallel_map(LEGACY_THREADS, &ms, |_, &m| {
        let policy = CoalescingPolicy::fss(m)?;
        let data = ExperimentConfig::new(policy, num_plaintexts, 32)
            .with_seed(seed)
            .with_threads(1)
            .run()?;
        let avg =
            avg_correct_correlation(&data, Attack::baseline(32), TimingSource::LastRoundCycles)?;
        Ok(Fig7Row {
            m,
            mean_total_cycles: data.mean_total_cycles()?,
            mean_total_accesses: data.mean_total_accesses(),
            avg_corr_naive_attack: avg,
        })
    })
}

fn legacy_ablation_mshr(num_plaintexts: usize, seed: u64) -> Result<Vec<MshrRow>, ExperimentError> {
    let configs = [
        (
            "baseline coalescing, no MSHR",
            CoalescingPolicy::Baseline,
            0usize,
        ),
        (
            "coalescing disabled, no MSHR",
            CoalescingPolicy::Disabled,
            0,
        ),
        (
            "coalescing disabled, 64 MSHRs",
            CoalescingPolicy::Disabled,
            64,
        ),
    ];
    try_parallel_map(
        LEGACY_THREADS,
        &configs,
        |_, &(label, policy, mshr_entries)| {
            let gpu = GpuConfig {
                mshr_entries,
                ..GpuConfig::paper()
            };
            let data = ExperimentConfig::new(policy, num_plaintexts, 32)
                .with_seed(seed)
                .with_gpu(gpu)
                .with_threads(1)
                .run()?;
            let k10 = data.true_last_round_key();
            let attack = Attack::baseline(32).with_threads(Some(1));
            let rec =
                attack.recover_byte(&data.attack_samples(TimingSource::LastRoundCycles)?, 0)?;
            Ok(MshrRow {
                config: label.into(),
                corr_correct: rec.correlation_of(k10[0]),
                rank: rec.rank_of(k10[0]),
                mean_total_cycles: data.mean_total_cycles()?,
            })
        },
    )
}

#[test]
fn fig05_matches_legacy_generator() {
    let legacy = legacy_fig05(PLAINTEXTS, SEED).expect("legacy fig05");
    let new = fig05_last_vs_total(PLAINTEXTS, SEED).expect("sweep fig05");
    assert_eq!(legacy, new);
}

#[test]
fn fig06_matches_legacy_generator() {
    let legacy = legacy_fig06(PLAINTEXTS, SEED).expect("legacy fig06");
    let new = fig06_coalescing_onoff(PLAINTEXTS, SEED).expect("sweep fig06");
    assert_eq!(legacy, new);
}

#[test]
fn fig07_matches_legacy_generator() {
    let legacy = legacy_fig07(PLAINTEXTS, SEED).expect("legacy fig07");
    let new = fig07_fss_performance(PLAINTEXTS, SEED).expect("sweep fig07");
    assert_eq!(legacy, new);
}

#[test]
fn ablation_mshr_matches_legacy_generator() {
    let legacy = legacy_ablation_mshr(PLAINTEXTS, SEED).expect("legacy ablation_mshr");
    let new = ablation_mshr(PLAINTEXTS, SEED).expect("sweep ablation_mshr");
    assert_eq!(legacy, new);
}

/// A cache hit must be indistinguishable from a fresh simulation: the
/// same generator served from a warm cache returns the same rows it
/// returned cold, and the runner's accounting shows the suite actually
/// exercised the cache.
#[test]
fn figure_suite_shares_runs_through_the_cache() {
    let runner = SweepRunner::new();
    let fig06_cold = fig06_coalescing_onoff_with(&runner, PLAINTEXTS, SEED).expect("fig06 cold");
    // fig06's two scenarios are now cached; the MSHR ablation re-uses the
    // paper-default baseline and disabled runs, the L1 ablation the
    // baseline run again.
    let mshr = ablation_mshr_with(&runner, PLAINTEXTS, SEED).expect("mshr");
    let l1 = ablation_l1_with(&runner, PLAINTEXTS, SEED).expect("l1");
    let fig06_warm = fig06_coalescing_onoff_with(&runner, PLAINTEXTS, SEED).expect("fig06 warm");

    assert_eq!(fig06_cold, fig06_warm, "cache hit changed figure rows");
    assert_eq!(mshr.len(), 3);
    assert_eq!(l1.len(), 2);

    let report = runner.report();
    assert!(
        report.hits() > 0,
        "figure suite never hit the run cache: {} served, {} launched",
        report.served,
        report.launched
    );
    // fig06 warm (2 hits) + MSHR rows 1-2 (2 hits) + L1 row 1 (1 hit):
    // only the 64-MSHR and 16-set-L1 scenarios still simulate.
    assert_eq!(report.served, 9);
    assert_eq!(report.launched, 4);
}
