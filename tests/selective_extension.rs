//! Tests of the selective-randomization extension (the hardware/software
//! co-design the paper sketches as future work in §VII): only the
//! vulnerable last-round loads are randomized.

use rcoal::prelude::*;
use rcoal_gpu_sim::LaunchPolicy;

#[test]
fn selective_matches_uniform_on_the_last_round() {
    // With the same seed, the vulnerable policy draws can differ between
    // uniform and selective runs (different rng stream), but the
    // *distributional* security must match: compare correct-guess
    // correlations on the per-byte channel.
    let policy = CoalescingPolicy::rss_rts(8).expect("valid");
    let corr_for = |cfg: ExperimentConfig| {
        let data = cfg.functional_only().run().expect("experiment");
        let k10 = data.true_last_round_key();
        let attack = Attack::against(policy, 32).with_seed(5);
        attack
            .recover_byte(
                &data.attack_samples(TimingSource::ByteAccesses(0)).unwrap(),
                0,
            )
            .unwrap()
            .correlation_of(k10[0])
    };
    let uniform = corr_for(ExperimentConfig::new(policy, 250, 32).with_seed(301));
    let selective = corr_for(ExperimentConfig::selective(policy, 250, 32).with_seed(301));
    assert!(
        uniform.abs() < 0.4 && selective.abs() < 0.4,
        "both should break the channel: uniform {uniform}, selective {selective}"
    );
}

#[test]
fn selective_keeps_rounds_1_to_9_at_baseline_cost() {
    let policy = CoalescingPolicy::fss(16).expect("valid");
    let base = ExperimentConfig::new(CoalescingPolicy::Baseline, 5, 32)
        .with_seed(302)
        .functional_only()
        .run()
        .expect("experiment");
    let uniform = ExperimentConfig::new(policy, 5, 32)
        .with_seed(302)
        .functional_only()
        .run()
        .expect("experiment");
    let selective = ExperimentConfig::selective(policy, 5, 32)
        .with_seed(302)
        .functional_only()
        .run()
        .expect("experiment");

    // Last-round accesses are protected in both defended configurations.
    assert!(selective.mean_last_round_accesses() > base.mean_last_round_accesses() * 1.5);
    assert_eq!(
        selective.mean_last_round_accesses(),
        uniform.mean_last_round_accesses(),
        "FSS is deterministic, so the protected last round matches exactly"
    );
    // But total data movement stays near baseline for selective.
    let selective_overhead = selective.mean_total_accesses() / base.mean_total_accesses();
    let uniform_overhead = uniform.mean_total_accesses() / base.mean_total_accesses();
    assert!(
        selective_overhead < 1.3,
        "selective should be cheap: {selective_overhead}"
    );
    assert!(
        uniform_overhead > 1.8,
        "uniform FSS(32) should be expensive: {uniform_overhead}"
    );
}

#[test]
fn selective_timing_cost_is_a_fraction_of_uniform() {
    let policy = CoalescingPolicy::rss_rts(8).expect("valid");
    let cycles =
        |cfg: ExperimentConfig| cfg.run().expect("experiment").mean_total_cycles().unwrap();
    let base = cycles(ExperimentConfig::new(CoalescingPolicy::Baseline, 4, 32).with_seed(303));
    let uniform = cycles(ExperimentConfig::new(policy, 4, 32).with_seed(303));
    let selective = cycles(ExperimentConfig::selective(policy, 4, 32).with_seed(303));
    assert!(selective > base * 0.99, "still does last-round extra work");
    assert!(
        selective - base < (uniform - base) * 0.45,
        "selective slowdown {} should be well under half the uniform slowdown {}",
        selective - base,
        uniform - base
    );
}

#[test]
fn launch_policy_round_trips_through_config() {
    let policy = CoalescingPolicy::fss_rts(4).expect("valid");
    let cfg = ExperimentConfig::new(policy, 1, 32).with_launch(LaunchPolicy::Selective {
        vulnerable: policy,
        default: CoalescingPolicy::Baseline,
        vulnerable_tags: (16, 32),
    });
    let data = cfg.functional_only().run().expect("experiment");
    assert_eq!(data.len(), 1);
}

#[test]
fn custom_tag_range_protects_chosen_rounds() {
    // Protect round 9 (tag 9) as well as the last round: rounds tagged
    // 9..32 use the randomized policy.
    let policy = CoalescingPolicy::fss(32).expect("valid");
    let narrow = ExperimentConfig::new(policy, 3, 32)
        .with_seed(304)
        .with_launch(LaunchPolicy::Selective {
            vulnerable: policy,
            default: CoalescingPolicy::Baseline,
            vulnerable_tags: (16, 32),
        })
        .functional_only()
        .run()
        .expect("experiment");
    let wide = ExperimentConfig::new(policy, 3, 32)
        .with_seed(304)
        .with_launch(LaunchPolicy::Selective {
            vulnerable: policy,
            default: CoalescingPolicy::Baseline,
            vulnerable_tags: (9, 32),
        })
        .functional_only()
        .run()
        .expect("experiment");
    assert!(
        wide.mean_total_accesses() > narrow.mean_total_accesses(),
        "protecting more rounds costs more accesses"
    );
    assert_eq!(
        wide.mean_last_round_accesses(),
        narrow.mean_last_round_accesses(),
        "the last round itself is protected identically"
    );
}
