//! Cross-crate timing-behavior integration: the cycle simulator must
//! exhibit the architectural trends the paper's evaluation rests on.

use rcoal::prelude::*;
use rcoal_attack::pearson;

fn timed(policy: CoalescingPolicy, n: usize, lines: usize, seed: u64) -> ExperimentData {
    ExperimentConfig::new(policy, n, lines)
        .with_seed(seed)
        .run()
        .expect("experiment")
}

#[test]
fn execution_time_rises_with_subwarp_count() {
    let mut prev = 0.0;
    for m in [1usize, 4, 16] {
        let policy = CoalescingPolicy::fss(m).expect("divisor");
        let cycles = timed(policy, 5, 32, 201).mean_total_cycles().unwrap();
        assert!(
            cycles > prev,
            "FSS(M={m}) at {cycles} cycles should be slower than previous {prev}"
        );
        prev = cycles;
    }
}

#[test]
fn disabling_coalescing_is_the_most_expensive_option() {
    let base = timed(CoalescingPolicy::Baseline, 5, 32, 202);
    let off = timed(CoalescingPolicy::Disabled, 5, 32, 202);
    let fss8 = timed(CoalescingPolicy::fss(8).expect("valid"), 5, 32, 202);
    assert!(off.mean_total_cycles().unwrap() > fss8.mean_total_cycles().unwrap());
    assert!(off.mean_total_accesses() > fss8.mean_total_accesses());
    // Paper §III: ~2.7× data movement at the kernel level.
    let factor = off.mean_total_accesses() / base.mean_total_accesses();
    assert!(
        (1.8..3.5).contains(&factor),
        "no-coalescing access factor {factor} should be in the ~2-3x range"
    );
}

#[test]
fn rts_is_performance_neutral() {
    let fss = timed(CoalescingPolicy::fss(8).expect("valid"), 8, 32, 203);
    let fss_rts = timed(CoalescingPolicy::fss_rts(8).expect("valid"), 8, 32, 203);
    let rel = (fss_rts.mean_total_cycles().unwrap() - fss.mean_total_cycles().unwrap()).abs()
        / fss.mean_total_cycles().unwrap();
    assert!(
        rel < 0.05,
        "RTS should cost ~nothing; saw {:.1}% difference",
        rel * 100.0
    );
}

#[test]
fn rss_coalesces_better_than_fss() {
    // Skewed sizes leave a few large subwarps, recovering coalescing
    // opportunity (paper Figure 16 discussion).
    let fss = timed(CoalescingPolicy::fss(8).expect("valid"), 10, 32, 204);
    let rss = timed(CoalescingPolicy::rss(8).expect("valid"), 10, 32, 204);
    assert!(
        rss.mean_total_accesses() < fss.mean_total_accesses(),
        "RSS {} vs FSS {}",
        rss.mean_total_accesses(),
        fss.mean_total_accesses()
    );
    assert!(rss.mean_total_cycles().unwrap() < fss.mean_total_cycles().unwrap());
}

#[test]
fn last_round_time_correlates_with_last_round_accesses() {
    let data = timed(CoalescingPolicy::Baseline, 40, 32, 205);
    let accesses: Vec<f64> = data.last_round_accesses.iter().map(|&a| a as f64).collect();
    let cycles: Vec<f64> = data
        .last_round_cycles
        .as_ref()
        .expect("timing run")
        .iter()
        .map(|&c| c as f64)
        .collect();
    let rho = pearson(&accesses, &cycles);
    assert!(
        rho > 0.5,
        "the timing channel must be strong at the last round: rho = {rho}"
    );
}

#[test]
fn total_time_correlates_with_last_round_time() {
    // Figure 5: the attacker can use total time as a proxy.
    let data = timed(CoalescingPolicy::Baseline, 60, 32, 206);
    let last: Vec<f64> = data
        .last_round_cycles
        .as_ref()
        .expect("timing run")
        .iter()
        .map(|&c| c as f64)
        .collect();
    let total: Vec<f64> = data
        .total_cycles
        .as_ref()
        .expect("timing run")
        .iter()
        .map(|&c| c as f64)
        .collect();
    let rho = pearson(&last, &total);
    assert!(rho > 0.15, "Figure 5 relationship: rho = {rho}");
}

#[test]
fn larger_plaintexts_take_proportionally_longer() {
    let small = timed(CoalescingPolicy::Baseline, 2, 32, 207);
    let large = timed(CoalescingPolicy::Baseline, 2, 1024, 207);
    // 32 warps of work over 15 SMs: expect a clear increase, but far less
    // than 32x thanks to parallelism across SMs and schedulers.
    let ratio = large.mean_total_cycles().unwrap() / small.mean_total_cycles().unwrap();
    assert!(
        (2.0..32.0).contains(&ratio),
        "1024-line / 32-line cycle ratio = {ratio}"
    );
    assert!(
        (large.mean_total_accesses() / small.mean_total_accesses() - 32.0).abs() < 3.0,
        "access counts scale with the number of warps"
    );
}

#[test]
fn coalescing_factor_reflects_spatial_locality() {
    // AES T-table lookups coalesce several-fold at baseline.
    let base = timed(CoalescingPolicy::Baseline, 5, 32, 208);
    let total_requests: f64 =
        base.total_requests.iter().sum::<u64>() as f64 / base.total_requests.len() as f64;
    let factor = total_requests / base.mean_total_accesses();
    assert!(
        factor > 1.5,
        "baseline coalescing should merge lanes substantially: {factor}"
    );
}
