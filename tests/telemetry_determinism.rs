//! The telemetry determinism contract: every cycle-domain artifact —
//! event streams, leakage profiles, and their serialized forms — must be
//! bit-identical for a fixed seed no matter how many worker threads
//! drive the sweep, and collecting telemetry must not perturb the
//! scientific observations.

use rcoal_core::CoalescingPolicy;
use rcoal_experiments::{ExperimentConfig, ExperimentData, TelemetrySpec};
use rcoal_telemetry::{MetricsRegistry, Severity};

const SEED: u64 = 0x7e1e;

fn run_instrumented(policy: CoalescingPolicy, threads: usize) -> ExperimentData {
    ExperimentConfig::new(policy, 8, 32)
        .with_seed(SEED)
        .with_threads(threads)
        .with_telemetry(TelemetrySpec::full())
        .run()
        .expect("instrumented run succeeds")
}

#[test]
fn event_streams_and_profiles_are_bit_identical_across_thread_counts() {
    for policy in [
        CoalescingPolicy::Baseline,
        CoalescingPolicy::rss_rts(4).expect("valid subwarp count"),
    ] {
        let reference = run_instrumented(policy, 1);
        let ref_tel = reference.telemetry.as_ref().expect("telemetry collected");
        for threads in [2, 4] {
            let data = run_instrumented(policy, threads);
            let tel = data.telemetry.as_ref().expect("telemetry collected");
            assert_eq!(
                tel, ref_tel,
                "{policy} telemetry diverged at threads={threads}"
            );
            assert_eq!(
                tel.trace_jsonl(),
                ref_tel.trace_jsonl(),
                "{policy} serialized trace diverged at threads={threads}"
            );
            assert_eq!(
                tel.metrics_json(),
                ref_tel.metrics_json(),
                "{policy} metrics snapshot diverged at threads={threads}"
            );
            assert_eq!(
                data, reference,
                "{policy} data diverged at threads={threads}"
            );
        }
    }
}

#[test]
fn instrumentation_does_not_change_the_observations() {
    let plain = ExperimentConfig::new(CoalescingPolicy::fss(8).expect("8 divides 32"), 8, 32)
        .with_seed(SEED)
        .run()
        .expect("plain run succeeds");
    let mut instrumented = run_instrumented(CoalescingPolicy::fss(8).expect("8 divides 32"), 4);
    assert!(instrumented.telemetry.is_some());
    instrumented.telemetry = None;
    assert_eq!(instrumented, plain, "telemetry perturbed the observations");
}

#[test]
fn traces_record_the_whole_launch_lifecycle() {
    let data = run_instrumented(CoalescingPolicy::Baseline, 1);
    let tel = data.telemetry.expect("telemetry collected");
    assert_eq!(tel.launches.len(), 8);
    let jsonl = tel.trace_jsonl();
    for code in [
        "\"code\":\"launch\"",
        "\"code\":\"load\"",
        "\"code\":\"reply\"",
        "\"code\":\"warp_finished\"",
        "\"code\":\"done\"",
    ] {
        assert!(jsonl.contains(code), "trace is missing {code}");
    }
    // The aggregate profile saw the memory system end to end.
    assert!(tel.profile.mem_latency.count() > 0);
    assert!(tel.profile.accesses_per_subwarp.count() > 0);
    assert!(tel.profile.mcs.iter().any(|mc| mc.serviced > 0));
}

#[test]
fn severity_floor_thins_the_trace_deterministically() {
    let full = run_instrumented(CoalescingPolicy::Baseline, 1);
    let warn_only = ExperimentConfig::new(CoalescingPolicy::Baseline, 8, 32)
        .with_seed(SEED)
        .with_telemetry(TelemetrySpec::full().with_min_severity(Severity::Info))
        .run()
        .expect("info-level run succeeds");
    let full_events = full.telemetry.as_ref().expect("telemetry").num_events();
    let info_events = warn_only
        .telemetry
        .as_ref()
        .expect("telemetry")
        .num_events();
    assert!(
        info_events < full_events,
        "raising the floor must retain fewer events ({info_events} vs {full_events})"
    );
    assert!(!warn_only
        .telemetry
        .expect("telemetry")
        .trace_jsonl()
        .contains("\"severity\":\"debug\""));
}

#[test]
fn host_metrics_never_leak_into_cycle_domain_artifacts() {
    // Attach a host registry (wall-clock, nondeterministic) and check the
    // cycle-domain outputs still match a run without one.
    let registry = MetricsRegistry::new();
    let with_host = ExperimentConfig::new(CoalescingPolicy::rss_rts(4).expect("valid"), 8, 32)
        .with_seed(SEED)
        .with_threads(4)
        .with_telemetry(TelemetrySpec::full())
        .with_host_metrics(&registry)
        .run()
        .expect("host-metered run succeeds");
    let without_host = run_instrumented(CoalescingPolicy::rss_rts(4).expect("valid"), 4);
    assert_eq!(with_host, without_host);
    // And the registry did record host-side activity.
    let snap = registry.snapshot();
    assert_eq!(snap.counters["span.experiment.run.calls"], 1);
    assert!(snap.counters["pool.launches.items"] == 8);
}
