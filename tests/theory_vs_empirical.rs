//! Validates the analytical security model (rcoal-theory) against Monte
//! Carlo simulation of the actual defense machinery (rcoal-core) — the
//! same cross-check the paper makes between Table II and §VI.

use rcoal::prelude::*;
use rcoal_attack::pearson;
use rcoal_rng::StdRng;
use rcoal_rng::{Rng, SeedableRng};
use rcoal_theory::{Occupancy, SecurityModel};

const R: usize = 16;
const BLOCK: u64 = 64;

/// Draws one warp's worth of uniform block indices over `r` blocks (the
/// model's assumption for random plaintexts).
fn random_addrs_r(rng: &mut StdRng, r: usize) -> Vec<Option<u64>> {
    (0..32)
        .map(|_| Some(rng.gen_range(0..r as u64) * BLOCK))
        .collect()
}

/// [`random_addrs_r`] at the paper's AES geometry (`R = 16`).
fn random_addrs(rng: &mut StdRng) -> Vec<Option<u64>> {
    random_addrs_r(rng, R)
}

#[test]
fn occupancy_distribution_matches_monte_carlo() {
    let mut rng = StdRng::seed_from_u64(1);
    let coalescer = Coalescer::new();
    let single = SubwarpAssignment::single(32).expect("warp");
    let trials = 20_000;
    let mut mean = 0.0;
    for _ in 0..trials {
        let addrs = random_addrs(&mut rng);
        mean += coalescer.count_accesses(&single, &addrs) as f64 / trials as f64;
    }
    let theory = Occupancy::new(32, R).mean();
    assert!(
        (mean - theory).abs() < 0.05,
        "empirical {mean} vs theoretical {theory}"
    );
}

/// Empirical ρ(U, Û) for a randomized policy over an `r`-block table:
/// both the defense and the attacker draw independent assignments over
/// the same block indices.
fn empirical_rho_r(policy: CoalescingPolicy, r: usize, trials: usize, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let coalescer = Coalescer::new();
    let mut u = Vec::with_capacity(trials);
    let mut u_hat = Vec::with_capacity(trials);
    for _ in 0..trials {
        let addrs = random_addrs_r(&mut rng, r);
        let defense = policy.assignment(32, &mut rng).expect("valid");
        let attacker = policy.assignment(32, &mut rng).expect("valid");
        u.push(coalescer.count_accesses(&defense, &addrs) as f64);
        u_hat.push(coalescer.count_accesses(&attacker, &addrs) as f64);
    }
    pearson(&u, &u_hat)
}

/// [`empirical_rho_r`] at the paper's AES geometry (`R = 16`).
fn empirical_rho(policy: CoalescingPolicy, trials: usize, seed: u64) -> f64 {
    empirical_rho_r(policy, R, trials, seed)
}

/// Builds the policy for one Table II cell.
fn cell_policy(mech: Mechanism, m: usize) -> CoalescingPolicy {
    match mech {
        Mechanism::Fss => CoalescingPolicy::fss(m).expect("valid"),
        Mechanism::FssRts => CoalescingPolicy::fss_rts(m).expect("valid"),
        Mechanism::RssRts => CoalescingPolicy::rss_rts(m).expect("valid"),
    }
}

/// Per-cell Monte Carlo budget and tolerance.
///
/// Cells whose analytic ρ is exactly 1 (deterministic replay, or a
/// single subwarp under RTS) or exactly 0 (fully split warp: zero
/// variance on both sides, where `pearson` and the model both define
/// ρ = 0) are checked tightly with few trials; genuinely stochastic
/// cells get 30k trials against a sampling tolerance.
fn cell_budget(mech: Mechanism, m: usize) -> (usize, f64) {
    let exact = m == 32 || m == 1 || mech == Mechanism::Fss;
    if exact {
        (2_000, 1e-9)
    } else {
        (30_000, 0.03)
    }
}

#[test]
fn full_table_2_grid_matches_monte_carlo() {
    // Every mechanism × every Table II subwarp count, per-cell tolerance.
    let model = SecurityModel::default();
    for mech in [Mechanism::Fss, Mechanism::FssRts, Mechanism::RssRts] {
        for (i, m) in [1usize, 2, 4, 8, 16, 32].into_iter().enumerate() {
            let analytic = model.rho(mech, m);
            let (trials, tolerance) = cell_budget(mech, m);
            let empirical =
                empirical_rho(cell_policy(mech, m), trials, 40 + 16 * i as u64 + m as u64);
            assert!(
                (analytic - empirical).abs() < tolerance,
                "{mech:?} M={m}: analytic {analytic:.4} vs Monte Carlo {empirical:.4} \
                 (tolerance {tolerance})"
            );
        }
    }
}

#[test]
fn workload_geometries_match_monte_carlo() {
    // The non-AES registry workloads change the table geometry:
    // PRESENT/GIFT span R = 32 blocks (2-byte entries), RECTANGLE spans
    // R = 8 (8-byte entries). The generalized closed form must track
    // Monte Carlo at both, exactly as it does for the paper's R = 16.
    for (r, seed_base) in [(8usize, 300u64), (32, 400)] {
        let model = SecurityModel::new(32, r);
        for mech in [Mechanism::Fss, Mechanism::FssRts, Mechanism::RssRts] {
            for (i, m) in [2usize, 4, 8].into_iter().enumerate() {
                let analytic = model.rho(mech, m);
                let (trials, tolerance) = cell_budget(mech, m);
                let empirical = empirical_rho_r(
                    cell_policy(mech, m),
                    r,
                    trials,
                    seed_base + 16 * i as u64 + m as u64,
                );
                assert!(
                    (analytic - empirical).abs() < tolerance,
                    "{mech:?} M={m} R={r}: analytic {analytic:.4} vs Monte Carlo \
                     {empirical:.4} (tolerance {tolerance})"
                );
            }
        }
    }
}

#[test]
fn fss_replay_is_perfectly_correlated() {
    // FSS is deterministic: two "draws" coincide, ρ = 1 exactly.
    let rho = empirical_rho(CoalescingPolicy::fss(4).expect("valid"), 5_000, 60);
    assert!((rho - 1.0).abs() < 1e-9, "rho = {rho}");
}

#[test]
fn fully_split_warp_has_no_variance() {
    let mut rng = StdRng::seed_from_u64(61);
    let coalescer = Coalescer::new();
    let policy = CoalescingPolicy::fss(32).expect("valid");
    for _ in 0..100 {
        let addrs = random_addrs(&mut rng);
        let a = policy.assignment(32, &mut rng).expect("valid");
        assert_eq!(coalescer.count_accesses(&a, &addrs), 32);
    }
}

#[test]
fn mean_accesses_under_fss_matches_occupancy_sum() {
    // μ(U) = M · μ(𝔑(N/M, R)) — §V-B1.
    let mut rng = StdRng::seed_from_u64(62);
    let coalescer = Coalescer::new();
    for m in [2usize, 8] {
        let policy = CoalescingPolicy::fss(m).expect("valid");
        let trials = 20_000;
        let mut mean = 0.0;
        for _ in 0..trials {
            let addrs = random_addrs(&mut rng);
            let a = policy.assignment(32, &mut rng).expect("valid");
            mean += coalescer.count_accesses(&a, &addrs) as f64 / trials as f64;
        }
        let theory = m as f64 * Occupancy::new(32 / m, R).mean();
        assert!(
            (mean - theory).abs() < 0.1,
            "FSS M={m}: empirical {mean} vs M*mu = {theory}"
        );
    }
}

#[test]
fn skewed_rss_mean_subwarp_size_profile() {
    // Under the skewed distribution, the largest subwarp is big most of
    // the time (the paper's Figure 9 observation / its RSS+RTS security
    // hypothesis).
    let mut rng = StdRng::seed_from_u64(63);
    let policy = CoalescingPolicy::rss(4).expect("valid");
    let trials = 4_000;
    let mut max_size_sum = 0usize;
    for _ in 0..trials {
        let a = policy.assignment(32, &mut rng).expect("valid");
        max_size_sum += a.sizes().into_iter().max().expect("non-empty");
    }
    let avg_max = max_size_sum as f64 / trials as f64;
    // Uniform compositions of 32 into 4 parts: E[max] ≈ 16.6 ≫ 8 (the
    // FSS size).
    assert!(
        avg_max > 14.0,
        "skewed RSS should usually have one large subwarp: avg max = {avg_max}"
    );
}
